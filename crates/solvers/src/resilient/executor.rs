//! The scheme-generic resilient executor.
//!
//! One loop implements the paper's protocol for *any*
//! [`IterativeSolver`] × [`VerificationScheme`] combination: work
//! proceeds in chunks ending with a verification; after `s` verified
//! chunks a checkpoint is taken (so the last checkpoint is always
//! valid — claim C1); any detection rolls back to the last checkpoint
//! (or, when the escalation guard flags a tainted checkpoint, to the
//! pristine initial data). For CG this reproduces the historical
//! per-scheme drivers operation for operation; for PCG, BiCGStab and
//! CGNE it is what makes resilient variants exist at all.
//!
//! Per iteration:
//!
//! 1. this iteration's faults strike the unreliable region — the matrix
//!    arrays and the canonical vectors (under the ABFT schemes `r`/`x`
//!    replicas are TMR-held and product-output faults are deferred onto
//!    the verified product's output);
//! 2. the solver steps once; every forward product runs *defensively*
//!    against the live matrix image and is checked by the scheme
//!    ([`VerificationScheme::check_product`] — checksum tests, forward
//!    correction);
//! 3. a rejected product or a numerical breakdown rolls back;
//! 4. under the ABFT schemes the TMR replicas are voted (collisions
//!    roll back, outvoted flips are counted as corrections);
//! 5. at chunk boundaries the scheme verifies the whole state
//!    ([`VerificationScheme::verify_chunk`]); convergence is only
//!    accepted behind a passing verification, and checkpoints are only
//!    taken behind one.
//!
//! ## Memory discipline
//!
//! The executor owns **no** solve-scoped heap state: the solver machine,
//! the corruptible matrix image and the retained buffers (checkpoint
//! slot, pristine initial state, TMR shadows, trusted input copies, the
//! deferred-fault list) all come from the caller's
//! [`SolverWorkspace`](crate::SolverWorkspace) arena. Checkpoints are
//! [`IterativeSolver::snapshot_into`] a double-buffered
//! [`SnapshotSlot`](ftcg_checkpoint::SnapshotSlot); rollback restores
//! the matrix image in place with [`CsrMatrix::copy_image_from`]
//! (fault injection flips bits, it never changes array lengths). A
//! steady-state iteration — no checkpoint, no rollback, no fault —
//! performs zero heap allocations (pinned by the counting-allocator
//! gate in `tests/alloc_gate.rs`).

use ftcg_abft::XRef;
use ftcg_fault::ledger::{FaultLedger, FaultOutcome};
use ftcg_fault::target::{FaultTarget, VectorId};
use ftcg_fault::{FaultEvent, Injector};
use ftcg_kernels::DefensiveProduct;
use ftcg_sparse::{vector, CsrMatrix};
use ftcg_telemetry::event::{target as ev_target, via as ev_via};
use ftcg_telemetry::{Event, Phase, Recorder};

use super::scheme::{ProductCheck, VerificationScheme};
use super::{true_residual, EscalationGuard, ResilientConfig, ResilientOutcome, RunStats, SimTime};
use crate::machine::{CanonVec, IterativeSolver, ProductStatus, StepContext, StepResult};
use crate::workspace::ExecArena;

/// Flips one bit of a value in place.
#[inline]
fn flip(v: &mut f64, bit: u32) {
    *v = f64::from_bits(v.to_bits() ^ (1u64 << bit));
}

/// Maps the injector's fault target onto the telemetry trace's stable
/// target codes.
fn fault_code(target: &FaultTarget) -> u64 {
    match target {
        FaultTarget::MatrixVal => ev_target::A_VALUES,
        FaultTarget::MatrixColid => ev_target::A_COL_IDX,
        FaultTarget::MatrixRowidx => ev_target::A_ROW_PTR,
        FaultTarget::Vector(VectorId::P) => ev_target::P,
        FaultTarget::Vector(VectorId::Q) => ev_target::Q,
        FaultTarget::Vector(VectorId::R) => ev_target::R,
        FaultTarget::Vector(VectorId::X) => ev_target::X,
    }
}

/// The resilient [`StepContext`]: products run defensively against the
/// live (corruptible) matrix image; the scheme verifies each one. The
/// iteration's first product carries the pre-captured input reference
/// and receives the deferred product-output faults; later products
/// (BiCGStab's second) capture their reference at call time — their
/// inputs were computed in-step from already verified data, after this
/// iteration's faults struck — into the retained scratch reference.
struct ResilientCtx<'a, V: VerificationScheme, R: Recorder> {
    a: &'a mut CsrMatrix,
    kernel: &'a mut DefensiveProduct,
    scheme: &'a V,
    /// Trusted input copy for the iteration's first product (ABFT
    /// schemes only).
    xref: Option<&'a XRef>,
    /// Set when a non-clean product check may have rewritten the matrix
    /// arrays (indices included) — ABFT-CORRECTION's repair attempt —
    /// so rollback must restore the full image, not just the values.
    /// Pure detection checks never mutate and leave the flag alone.
    structure_dirty: &'a mut bool,
    /// Retained buffer for call-time captures of later products.
    xref_scratch: &'a mut XRef,
    /// Product-output faults deferred onto the first product.
    q_faults: &'a [FaultEvent],
    stats: &'a mut RunStats,
    ledger: &'a mut FaultLedger,
    first: bool,
    /// Forward products this step actually executed (the `Tverif`
    /// multiplier — a half-step exit or an early breakdown runs fewer
    /// than the solver's nominal count).
    products_run: usize,
    rec: &'a mut R,
}

impl<V: VerificationScheme, R: Recorder> StepContext for ResilientCtx<'_, V, R> {
    fn product(&mut self, x: &mut [f64], y: &mut [f64]) -> ProductStatus {
        self.products_run += 1;
        let t_prod = self.rec.start();
        self.kernel.product(self.a, x, y);
        self.rec.phase(Phase::Product, t_prod);
        let first = std::mem::replace(&mut self.first, false);
        if !self.scheme.hardened_vectors() {
            return ProductStatus::Trusted; // ONLINE: unverified products
        }
        if first {
            // Faults in the product's computation/output strike here.
            for e in self.q_faults {
                flip(&mut y[e.offset], e.bit);
            }
        }
        let xref: &XRef = match (first, self.xref) {
            (true, Some(x0)) => x0,
            _ => {
                self.xref_scratch.store(x);
                self.xref_scratch
            }
        };
        let t_check = self.rec.start();
        let check = self.scheme.check_product(self.a, x, xref, y);
        self.rec.phase(Phase::ProductCheck, t_check);
        self.stats.product_checks += 1;
        if check != ProductCheck::Clean && self.scheme.check_may_mutate() {
            *self.structure_dirty = true;
        }
        let it = self.stats.executed as u64;
        match check {
            ProductCheck::Clean => ProductStatus::Trusted,
            ProductCheck::FalseAlarm => {
                self.stats.detections += 1;
                self.rec.event(Event::detect(it, ev_via::PRODUCT));
                // The correction attempt may have touched the arrays.
                self.kernel.invalidate();
                ProductStatus::Trusted
            }
            ProductCheck::Corrected => {
                self.stats.detections += 1;
                self.stats.forward_corrections += 1;
                self.rec.event(Event::detect(it, ev_via::PRODUCT));
                self.rec.event(Event::correct_forward(it));
                self.kernel.invalidate();
                self.ledger.resolve_iteration_where(
                    self.stats.executed,
                    FaultOutcome::Corrected,
                    |rec| {
                        rec.event.target.is_matrix()
                            || matches!(
                                rec.event.target,
                                FaultTarget::Vector(VectorId::P | VectorId::Q)
                            )
                    },
                );
                ProductStatus::Trusted
            }
            ProductCheck::Rejected => {
                self.stats.detections += 1;
                self.rec.event(Event::detect(it, ev_via::PRODUCT));
                self.kernel.invalidate();
                ProductStatus::Rejected
            }
        }
    }

    fn product_transpose(&mut self, x: &[f64], y: &mut [f64]) -> ProductStatus {
        // Defensive (the image may carry wild indices) but never
        // checksum-verified: the paper's checksums protect the row
        // space only. Errors it lets through are caught downstream by
        // the TMR vote, the chunk verification or a breakdown.
        self.a.spmv_transpose_clamped_into(x, y);
        ProductStatus::Trusted
    }
}

/// Runs the protocol for one solver × scheme combination.
///
/// `solver` must be in the zero-start state over `(a0, b)`, `image`
/// must hold a bit-exact copy of `a0` (the corruptible working image),
/// and `arena` provides the retained buffers — all three come from
/// [`SolverWorkspace::checkout`](crate::SolverWorkspace).
#[allow(clippy::too_many_arguments)]
pub(super) fn run_executor<V: VerificationScheme, R: Recorder>(
    a0: &CsrMatrix,
    b: &[f64],
    cfg: &ResilientConfig,
    mut injector: Option<&mut Injector>,
    scheme: V,
    solver: &mut dyn IterativeSolver,
    image: &mut CsrMatrix,
    arena: &mut ExecArena,
    rec: &mut R,
) -> ResilientOutcome {
    let hardened = scheme.hardened_vectors();
    // Pin `auto` against the pristine matrix; conversions are cached
    // and dropped whenever the matrix image mutates.
    let mut kernel = DefensiveProduct::new(cfg.kernel.resolve(a0));
    let d = scheme.chunk_len(cfg.verif_interval);

    // Working (corruptible) state and the retained buffers.
    let a = image;
    let ExecArena {
        initial,
        slot,
        xref,
        xref_scratch,
        r_tmr,
        x_tmr,
        q_faults,
    } = arena;
    let threshold = cfg
        .stopping
        .threshold(a0, vector::norm2(b), solver.residual_norm());
    solver.set_threshold(threshold);

    // TMR shadows of the canonical r/x (ABFT schemes): replicas receive
    // the injected flips and are voted each iteration; the vote only
    // ever feeds statistics and rollback decisions — an outvoted flip
    // never reaches the trajectory, exactly like the historical
    // triplicated updates.
    if hardened {
        r_tmr.store(solver.vector(CanonVec::Residual));
        x_tmr.store(solver.vector(CanonVec::Iterate));
    }

    // The pristine input data ("for the first frame we recover by
    // reading initial data again") and the rolling checkpoint slot.
    solver.snapshot_into(0, a0, initial);
    slot.save(initial);
    let mut guard = EscalationGuard::default();

    let mut time = SimTime::default();
    let mut stats = RunStats::default();
    let mut ledger = FaultLedger::new();
    if hardened {
        xref.store(solver.vector(CanonVec::Direction));
    }
    let mut productive = 0usize;
    let mut iters_in_chunk = 0usize;
    let mut chunks_since_ckpt = 0usize;
    let mut replica_rot = 0usize;
    let mut converged = solver.residual_norm() <= threshold;
    // `true` while the live image's *structure* (`colid`/`rowptr`) may
    // differ from the latest checkpoint's: set by index-array faults
    // and by correction attempts, cleared whenever image and checkpoint
    // are re-synchronized (checkpoint taken, rollback restored).
    // While clean, rollback takes the cheaper values-only restore
    // ([`CsrMatrix::copy_values_from`], whose debug-mode pattern check
    // verifies this very tracking on every test run).
    let mut structure_dirty = false;

    // Restores the latest checkpoint (or, when the escalation guard
    // flags a tainted one, the pristine initial data) into the solver
    // and the shadows — all in place, no allocation.
    macro_rules! rollback {
        () => {{
            time.add(cfg.costs.trec);
            stats.rollbacks += 1;
            let t_rb = rec.start();
            if guard.must_escalate() {
                // Re-read input data: discard the tainted checkpoint.
                // The escape target's structure is the pristine one,
                // not the (possibly sub-tolerance-corrupted) structure
                // the discarded checkpoint shared with the live image.
                slot.save(initial);
                structure_dirty = true;
                guard.consecutive_rollbacks = 0;
                rec.event(Event::escalate(stats.executed as u64));
            }
            guard.note_restore();
            let st = slot.latest().expect("initial checkpoint always present");
            if structure_dirty {
                a.copy_image_from(&st.matrix);
            } else {
                a.copy_values_from(&st.matrix);
            }
            structure_dirty = false;
            kernel.invalidate(); // rollback replaced the matrix image
            solver.restore(st, a);
            if hardened {
                r_tmr.store(solver.vector(CanonVec::Residual));
                x_tmr.store(solver.vector(CanonVec::Iterate));
            }
            productive = st.iteration;
            iters_in_chunk = 0;
            chunks_since_ckpt = 0;
            ledger.resolve_all_pending(FaultOutcome::RolledBack);
            if hardened {
                xref.store(solver.vector(CanonVec::Direction));
            }
            rec.phase(Phase::Rollback, t_rb);
            rec.event(Event::rollback(stats.executed as u64, productive as u64));
        }};
    }

    while !converged
        && productive < cfg.max_productive_iters
        && stats.executed < cfg.max_executed_iters
    {
        stats.executed += 1;

        // 1. Fault injection for this iteration.
        let events = injector
            .as_deref_mut()
            .map(|i| i.plan_iteration())
            .unwrap_or_default();
        for e in &events {
            ledger.record(stats.executed, *e);
            rec.event(Event::fault(
                stats.executed as u64,
                fault_code(&e.target),
                e.offset as u64,
                e.bit as u64,
            ));
        }
        guard.note_faults(events.len());
        q_faults.clear();
        for e in &events {
            match e.target {
                FaultTarget::Vector(VectorId::P) => {
                    flip(&mut solver.vector_mut(CanonVec::Direction)[e.offset], e.bit);
                }
                FaultTarget::Vector(VectorId::Q) => {
                    if hardened {
                        q_faults.push(*e); // deferred onto the product
                    } else {
                        flip(&mut solver.vector_mut(CanonVec::Product)[e.offset], e.bit);
                    }
                }
                FaultTarget::Vector(VectorId::R) => {
                    if hardened {
                        let rep = replica_rot % 3;
                        replica_rot += 1;
                        flip(&mut r_tmr.replica_mut(rep)[e.offset], e.bit);
                    } else {
                        flip(&mut solver.vector_mut(CanonVec::Residual)[e.offset], e.bit);
                    }
                }
                FaultTarget::Vector(VectorId::X) => {
                    if hardened {
                        let rep = replica_rot % 3;
                        replica_rot += 1;
                        flip(&mut x_tmr.replica_mut(rep)[e.offset], e.bit);
                    } else {
                        flip(&mut solver.vector_mut(CanonVec::Iterate)[e.offset], e.bit);
                    }
                }
                _ => {
                    if matches!(
                        e.target,
                        FaultTarget::MatrixColid | FaultTarget::MatrixRowidx
                    ) {
                        structure_dirty = true;
                    }
                    Injector::apply_to_matrix(e, a);
                }
            }
        }
        if events.iter().any(|e| e.target.is_matrix()) {
            kernel.invalidate();
        }

        // 2./3. One step, products verified by the scheme. The
        // iteration is charged `1 + Tverif` per product the step
        // actually ran (ABFT schemes; `verified_products` is the
        // nominal count, but half-step exits and early breakdowns run
        // fewer).
        let t_step = rec.start();
        let (step, products_run) = {
            let mut ctx = ResilientCtx {
                a: &mut *a,
                kernel: &mut kernel,
                scheme: &scheme,
                xref: hardened.then_some(&*xref),
                structure_dirty: &mut structure_dirty,
                xref_scratch: &mut *xref_scratch,
                q_faults: &*q_faults,
                stats: &mut stats,
                ledger: &mut ledger,
                first: true,
                products_run: 0,
                rec: &mut *rec,
            };
            let res = solver.step(&mut ctx);
            (res, ctx.products_run)
        };
        rec.phase(Phase::Step, t_step);
        time.add(1.0 + scheme.iteration_cost(&cfg.costs, products_run));
        match step {
            StepResult::Done => {}
            StepResult::Rejected => {
                // Detection already counted by the context.
                rollback!();
                continue;
            }
            StepResult::Breakdown => {
                // Numerical breakdown caused by an undetected
                // perturbation: treat as detection and roll back.
                stats.detections += 1;
                rec.event(Event::detect(stats.executed as u64, ev_via::BREAKDOWN));
                rollback!();
                continue;
            }
        }

        // 4. TMR vote on the vector data (ABFT schemes).
        if hardened {
            let t_vote = rec.start();
            let vr = r_tmr.vote();
            let vx = x_tmr.vote();
            rec.phase(Phase::TmrVote, t_vote);
            if !vr.is_trusted() || !vx.is_trusted() {
                // Colliding replica faults: detected, not correctable.
                stats.detections += 1;
                rec.event(Event::detect(stats.executed as u64, ev_via::TMR));
                rollback!();
                continue;
            }
            let tmr_fixed = vr.corrected + vx.corrected;
            if tmr_fixed > 0 {
                stats.tmr_corrections += tmr_fixed;
                rec.event(Event::correct_tmr(stats.executed as u64, tmr_fixed as u64));
                ledger.resolve_iteration_where(stats.executed, FaultOutcome::Corrected, |rec| {
                    matches!(
                        rec.event.target,
                        FaultTarget::Vector(VectorId::R | VectorId::X)
                    )
                });
            }
            // Replicas follow the verified update (identical bits to
            // applying the update to each voted replica).
            r_tmr.store(solver.vector(CanonVec::Residual));
            x_tmr.store(solver.vector(CanonVec::Iterate));
        }

        productive += 1;
        iters_in_chunk += 1;
        let recursive_converged = solver.residual_norm() <= threshold;

        // 5. Chunk boundary (or convergence claim): verify, then accept
        // convergence / checkpoint strictly behind the verification.
        if iters_in_chunk >= d || recursive_converged {
            let chunk_cost = scheme.chunk_cost(&cfg.costs);
            time.add(chunk_cost);
            stats.chunk_checks += 1;
            let t_verify = rec.start();
            let chunk_ok = scheme.verify_chunk(a, &*solver, &cfg.online_tol);
            rec.phase(Phase::ChunkVerify, t_verify);
            // Priced verifications (ONLINE) always leave a trace event;
            // the ABFT schemes' free per-iteration no-op checks only do
            // when they fail (they never should).
            if chunk_cost > 0.0 || !chunk_ok {
                rec.event(Event::chunk_verify(stats.executed as u64, chunk_ok));
            }
            if !chunk_ok {
                stats.detections += 1;
                rec.event(Event::detect(stats.executed as u64, ev_via::CHUNK));
                rollback!();
                continue;
            }
            iters_in_chunk = 0;
            if recursive_converged {
                converged = true;
                rec.event(Event::converged(stats.executed as u64, productive as u64));
                break;
            }
            chunks_since_ckpt += 1;
            if chunks_since_ckpt >= cfg.checkpoint_interval {
                time.add(cfg.costs.tcp);
                let t_ckpt = rec.start();
                solver.snapshot_into(productive, a, slot.begin_save());
                slot.commit();
                rec.phase(Phase::Checkpoint, t_ckpt);
                structure_dirty = false; // checkpoint == live image again
                stats.checkpoints += 1;
                rec.event(Event::checkpoint(stats.executed as u64, productive as u64));
                guard.note_checkpoint();
                chunks_since_ckpt = 0;
            }
        }
        if hardened {
            xref.store(solver.vector(CanonVec::Direction));
        }
    }

    // Whatever is still pending was never detected.
    ledger.resolve_all_pending(FaultOutcome::Undetected);
    let xv = solver.vector(CanonVec::Iterate).to_vec();
    let tr = true_residual(a0, b, &xv);
    ResilientOutcome {
        converged,
        productive_iterations: productive,
        executed_iterations: stats.executed,
        simulated_time: time.total,
        checkpoints: stats.checkpoints,
        rollbacks: stats.rollbacks,
        forward_corrections: stats.forward_corrections,
        tmr_corrections: stats.tmr_corrections,
        detections: stats.detections,
        product_checks: stats.product_checks,
        chunk_checks: stats.chunk_checks,
        ledger,
        true_residual: tr,
        x: xv,
    }
}

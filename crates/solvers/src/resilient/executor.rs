//! The scheme-generic resilient executor.
//!
//! One loop implements the paper's protocol for *any*
//! [`IterativeSolver`] × [`VerificationScheme`] combination: work
//! proceeds in chunks ending with a verification; after `s` verified
//! chunks a checkpoint is taken (so the last checkpoint is always
//! valid — claim C1); any detection rolls back to the last checkpoint
//! (or, when the escalation guard flags a tainted checkpoint, to the
//! pristine initial data). For CG this reproduces the historical
//! per-scheme drivers operation for operation; for PCG, BiCGStab and
//! CGNE it is what makes resilient variants exist at all.
//!
//! Per iteration:
//!
//! 1. this iteration's faults strike the unreliable region — the matrix
//!    arrays and the canonical vectors (under the ABFT schemes `r`/`x`
//!    replicas are TMR-held and product-output faults are deferred onto
//!    the verified product's output);
//! 2. the solver steps once; every forward product runs *defensively*
//!    against the live matrix image and is checked by the scheme
//!    ([`VerificationScheme::check_product`] — checksum tests, forward
//!    correction);
//! 3. a rejected product or a numerical breakdown rolls back;
//! 4. under the ABFT schemes the TMR replicas are voted (collisions
//!    roll back, outvoted flips are counted as corrections);
//! 5. at chunk boundaries the scheme verifies the whole state
//!    ([`VerificationScheme::verify_chunk`]); convergence is only
//!    accepted behind a passing verification, and checkpoints are only
//!    taken behind one.
//!
//! ## Memory discipline
//!
//! The executor owns **no** solve-scoped heap state: the solver machine,
//! the corruptible matrix image and the retained buffers (checkpoint
//! slot, pristine initial state, TMR shadows, trusted input copies, the
//! deferred-fault list) all come from the caller's
//! [`SolverWorkspace`](crate::SolverWorkspace) arena. Checkpoints are
//! [`IterativeSolver::snapshot_into`] a double-buffered
//! [`SnapshotSlot`](ftcg_checkpoint::SnapshotSlot); rollback restores
//! the matrix image in place with [`CsrMatrix::copy_image_from`]
//! (fault injection flips bits, it never changes array lengths). A
//! steady-state iteration — no checkpoint, no rollback, no fault —
//! performs zero heap allocations (pinned by the counting-allocator
//! gate in `tests/alloc_gate.rs`).

use ftcg_abft::XRef;
use ftcg_fault::ledger::{FaultLedger, FaultOutcome};
use ftcg_fault::target::{FaultTarget, VectorId};
use ftcg_fault::{FaultEvent, Injector};
use ftcg_kernels::DefensiveProduct;
use ftcg_sparse::{vector, CsrMatrix};
use ftcg_telemetry::event::{target as ev_target, via as ev_via};
use ftcg_telemetry::{Event, Phase, Recorder};

use super::scheme::{ProductCheck, VerificationScheme};
use super::{true_residual, EscalationGuard, ResilientConfig, ResilientOutcome, RunStats, SimTime};
use crate::machine::{CanonVec, IterativeSolver, ProductStatus, StepContext, StepResult};
use crate::workspace::ExecArena;

/// Flips one bit of a value in place.
#[inline]
fn flip(v: &mut f64, bit: u32) {
    *v = f64::from_bits(v.to_bits() ^ (1u64 << bit));
}

/// Maps the injector's fault target onto the telemetry trace's stable
/// target codes.
fn fault_code(target: &FaultTarget) -> u64 {
    match target {
        FaultTarget::MatrixVal => ev_target::A_VALUES,
        FaultTarget::MatrixColid => ev_target::A_COL_IDX,
        FaultTarget::MatrixRowidx => ev_target::A_ROW_PTR,
        FaultTarget::Vector(VectorId::P) => ev_target::P,
        FaultTarget::Vector(VectorId::Q) => ev_target::Q,
        FaultTarget::Vector(VectorId::R) => ev_target::R,
        FaultTarget::Vector(VectorId::X) => ev_target::X,
    }
}

/// The resilient [`StepContext`]: products run defensively against the
/// live (corruptible) matrix image; the scheme verifies each one. The
/// iteration's first product carries the pre-captured input reference
/// and receives the deferred product-output faults; later products
/// (BiCGStab's second) capture their reference at call time — their
/// inputs were computed in-step from already verified data, after this
/// iteration's faults struck — into the retained scratch reference.
struct ResilientCtx<'a, V: VerificationScheme, R: Recorder> {
    a: &'a mut CsrMatrix,
    kernel: &'a mut DefensiveProduct,
    scheme: &'a V,
    /// Trusted input copy for the iteration's first product (ABFT
    /// schemes only).
    xref: Option<&'a XRef>,
    /// Set when a non-clean product check may have rewritten the matrix
    /// arrays (indices included) — ABFT-CORRECTION's repair attempt —
    /// so rollback must restore the full image, not just the values.
    /// Pure detection checks never mutate and leave the flag alone.
    structure_dirty: &'a mut bool,
    /// Cleared alongside `structure_dirty` whenever a check may have
    /// rewritten the arrays: the live image can no longer be assumed
    /// bit-identical to the pristine input, so the batched driver must
    /// not serve this lane's products from the shared fused traversal.
    image_clean: &'a mut bool,
    /// The iteration's first product and its output probe, already
    /// computed by the batched driver's fused multi-RHS traversal of
    /// the pristine image (bit-identical to what
    /// [`DefensiveProduct::product_with_probe`] would compute — only
    /// offered when `image_clean`). Later products in the same step
    /// always compute.
    precomputed_first: Option<(&'a [f64], &'a [f64; 2])>,
    /// Retained buffer for call-time captures of later products.
    xref_scratch: &'a mut XRef,
    /// Product-output faults deferred onto the first product.
    q_faults: &'a [FaultEvent],
    stats: &'a mut RunStats,
    ledger: &'a mut FaultLedger,
    first: bool,
    /// Forward products this step actually executed (the `Tverif`
    /// multiplier — a half-step exit or an early breakdown runs fewer
    /// than the solver's nominal count).
    products_run: usize,
    rec: &'a mut R,
}

impl<V: VerificationScheme, R: Recorder> StepContext for ResilientCtx<'_, V, R> {
    fn product(&mut self, x: &mut [f64], y: &mut [f64]) -> ProductStatus {
        self.products_run += 1;
        let first = std::mem::replace(&mut self.first, false);
        let hardened = self.scheme.hardened_vectors();
        // Deferred product-output faults rewrite `y` *after* the
        // kernel, invalidating any probe accumulated alongside it —
        // run the plain product and let the scheme sweep `y` itself.
        let probe_stale = first && !self.q_faults.is_empty();
        let t_prod = self.rec.start();
        let mut probe: Option<[f64; 2]> = None;
        match (first, self.precomputed_first) {
            (true, Some((pre, p))) => {
                y.copy_from_slice(pre);
                if !probe_stale {
                    probe = Some(*p);
                }
            }
            _ if hardened && !probe_stale => {
                probe = Some(self.kernel.product_with_probe(self.a, x, y));
            }
            _ => self.kernel.product(self.a, x, y),
        }
        self.rec.phase(Phase::Product, t_prod);
        if !hardened {
            return ProductStatus::Trusted; // ONLINE: unverified products
        }
        if first {
            // Faults in the product's computation/output strike here.
            for e in self.q_faults {
                flip(&mut y[e.offset], e.bit);
            }
        }
        let xref: &XRef = match (first, self.xref) {
            (true, Some(x0)) => x0,
            _ => {
                self.xref_scratch.store(x);
                self.xref_scratch
            }
        };
        let t_check = self.rec.start();
        let check = self
            .scheme
            .check_product(self.a, x, xref, y, probe.as_ref());
        self.rec.phase(Phase::ProductCheck, t_check);
        self.stats.product_checks += 1;
        if check != ProductCheck::Clean && self.scheme.check_may_mutate() {
            *self.structure_dirty = true;
            *self.image_clean = false;
        }
        let it = self.stats.executed as u64;
        match check {
            ProductCheck::Clean => ProductStatus::Trusted,
            ProductCheck::FalseAlarm => {
                self.stats.detections += 1;
                self.rec.event(Event::detect(it, ev_via::PRODUCT));
                // The correction attempt may have touched the arrays.
                self.kernel.invalidate();
                ProductStatus::Trusted
            }
            ProductCheck::Corrected => {
                self.stats.detections += 1;
                self.stats.forward_corrections += 1;
                self.rec.event(Event::detect(it, ev_via::PRODUCT));
                self.rec.event(Event::correct_forward(it));
                self.kernel.invalidate();
                self.ledger.resolve_iteration_where(
                    self.stats.executed,
                    FaultOutcome::Corrected,
                    |rec| {
                        rec.event.target.is_matrix()
                            || matches!(
                                rec.event.target,
                                FaultTarget::Vector(VectorId::P | VectorId::Q)
                            )
                    },
                );
                ProductStatus::Trusted
            }
            ProductCheck::Rejected => {
                self.stats.detections += 1;
                self.rec.event(Event::detect(it, ev_via::PRODUCT));
                self.kernel.invalidate();
                ProductStatus::Rejected
            }
        }
    }

    fn product_transpose(&mut self, x: &[f64], y: &mut [f64]) -> ProductStatus {
        // Defensive (the image may carry wild indices) but never
        // checksum-verified: the paper's checksums protect the row
        // space only. Errors it lets through are caught downstream by
        // the TMR vote, the chunk verification or a breakdown.
        self.a.spmv_transpose_clamped_into(x, y);
        ProductStatus::Trusted
    }
}

/// The protocol loop, restructured as an explicit state machine so one
/// iteration can be driven from outside: [`ExecutorMachine::new`] +
/// `while active { begin_iteration(); finish_iteration(None); }` +
/// [`ExecutorMachine::finish`] is operation-for-operation the historical
/// `run_executor` loop, and the batched driver interleaves `k` machines
/// in lockstep, feeding fused product columns (with their output
/// probes) through `finish_iteration(Some((column, probe)))`.
pub(super) struct ExecutorMachine<'a, V: VerificationScheme, R: Recorder> {
    a0: &'a CsrMatrix,
    b: &'a [f64],
    cfg: &'a ResilientConfig,
    injector: Option<&'a mut Injector>,
    scheme: V,
    solver: &'a mut dyn IterativeSolver,
    /// The live (corruptible) matrix image.
    a: &'a mut CsrMatrix,
    arena: &'a mut ExecArena,
    rec: &'a mut R,
    hardened: bool,
    kernel: DefensiveProduct,
    d: usize,
    threshold: f64,
    guard: EscalationGuard,
    time: SimTime,
    stats: RunStats,
    ledger: FaultLedger,
    productive: usize,
    iters_in_chunk: usize,
    chunks_since_ckpt: usize,
    replica_rot: usize,
    converged: bool,
    /// `true` while the live image's *structure* (`colid`/`rowptr`) may
    /// differ from the latest checkpoint's: set by index-array faults
    /// and by correction attempts, cleared whenever image and checkpoint
    /// are re-synchronized (checkpoint taken, rollback restored).
    /// While clean, rollback takes the cheaper values-only restore
    /// ([`CsrMatrix::copy_values_from`], whose debug-mode pattern check
    /// verifies this very tracking on every test run).
    structure_dirty: bool,
    /// `true` while the live image is bit-identical to the pristine
    /// `a0`: cleared by any matrix fault and by mutating product checks,
    /// restored on rollback iff the restored checkpoint was itself
    /// taken of a clean image.
    image_clean: bool,
    /// Whether the state in the checkpoint slot snapshots a clean image.
    checkpoint_clean: bool,
    /// Set on escalation: per the batch-dropout rule an escalated
    /// repetition leaves the fused traversal for good (it keeps
    /// iterating in lockstep, computing its products solo).
    fuse_banned: bool,
}

impl<'a, V: VerificationScheme, R: Recorder> ExecutorMachine<'a, V, R> {
    /// Sets up the protocol state exactly as the historical executor
    /// prologue did, same operations in the same order.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn new(
        a0: &'a CsrMatrix,
        b: &'a [f64],
        cfg: &'a ResilientConfig,
        injector: Option<&'a mut Injector>,
        scheme: V,
        solver: &'a mut dyn IterativeSolver,
        image: &'a mut CsrMatrix,
        arena: &'a mut ExecArena,
        rec: &'a mut R,
    ) -> Self {
        let hardened = scheme.hardened_vectors();
        // Pin `auto` against the pristine matrix; conversions are cached
        // and dropped whenever the matrix image mutates.
        let kernel = DefensiveProduct::new(cfg.kernel.resolve(a0));
        let d = scheme.chunk_len(cfg.verif_interval);
        let threshold = cfg
            .stopping
            .threshold(a0, vector::norm2(b), solver.residual_norm());
        solver.set_threshold(threshold);

        // TMR shadows of the canonical r/x (ABFT schemes): replicas
        // receive the injected flips and are voted each iteration; the
        // vote only ever feeds statistics and rollback decisions — an
        // outvoted flip never reaches the trajectory, exactly like the
        // historical triplicated updates.
        if hardened {
            arena.r_tmr.store(solver.vector(CanonVec::Residual));
            arena.x_tmr.store(solver.vector(CanonVec::Iterate));
        }

        // The pristine input data ("for the first frame we recover by
        // reading initial data again") and the rolling checkpoint slot.
        solver.snapshot_into(0, a0, &mut arena.initial);
        arena.slot.save(&arena.initial);

        if hardened {
            arena.xref.store(solver.vector(CanonVec::Direction));
        }
        let converged = solver.residual_norm() <= threshold;
        ExecutorMachine {
            a0,
            b,
            cfg,
            injector,
            scheme,
            solver,
            a: image,
            arena,
            rec,
            hardened,
            kernel,
            d,
            threshold,
            guard: EscalationGuard::default(),
            time: SimTime::default(),
            stats: RunStats::default(),
            ledger: FaultLedger::new(),
            productive: 0,
            iters_in_chunk: 0,
            chunks_since_ckpt: 0,
            replica_rot: 0,
            converged,
            structure_dirty: false,
            image_clean: true,
            checkpoint_clean: true,
            fuse_banned: false,
        }
    }

    /// `true` while the loop condition of the historical executor holds.
    pub(super) fn active(&self) -> bool {
        !self.converged
            && self.productive < self.cfg.max_productive_iters
            && self.stats.executed < self.cfg.max_executed_iters
    }

    /// `true` when this iteration's first product may be served from the
    /// shared fused traversal of the pristine image: the live image is
    /// bit-identical to `a0` and the repetition has not escalated out of
    /// the batch.
    pub(super) fn fusable(&self) -> bool {
        self.image_clean && !self.fuse_banned
    }

    /// The post-fault direction vector — the first product's input,
    /// which the batched driver packs into the fused block.
    pub(super) fn direction(&self) -> &[f64] {
        self.solver.vector(CanonVec::Direction)
    }

    /// Phase 1 of an iteration: count it and let this iteration's
    /// faults strike the unreliable region.
    pub(super) fn begin_iteration(&mut self) {
        self.stats.executed += 1;
        let events = self
            .injector
            .as_deref_mut()
            .map(|i| i.plan_iteration())
            .unwrap_or_default();
        for e in &events {
            self.ledger.record(self.stats.executed, *e);
            self.rec.event(Event::fault(
                self.stats.executed as u64,
                fault_code(&e.target),
                e.offset as u64,
                e.bit as u64,
            ));
        }
        self.guard.note_faults(events.len());
        self.arena.q_faults.clear();
        for e in &events {
            match e.target {
                FaultTarget::Vector(VectorId::P) => {
                    flip(
                        &mut self.solver.vector_mut(CanonVec::Direction)[e.offset],
                        e.bit,
                    );
                }
                FaultTarget::Vector(VectorId::Q) => {
                    if self.hardened {
                        self.arena.q_faults.push(*e); // deferred onto the product
                    } else {
                        flip(
                            &mut self.solver.vector_mut(CanonVec::Product)[e.offset],
                            e.bit,
                        );
                    }
                }
                FaultTarget::Vector(VectorId::R) => {
                    if self.hardened {
                        let rep = self.replica_rot % 3;
                        self.replica_rot += 1;
                        flip(&mut self.arena.r_tmr.replica_mut(rep)[e.offset], e.bit);
                    } else {
                        flip(
                            &mut self.solver.vector_mut(CanonVec::Residual)[e.offset],
                            e.bit,
                        );
                    }
                }
                FaultTarget::Vector(VectorId::X) => {
                    if self.hardened {
                        let rep = self.replica_rot % 3;
                        self.replica_rot += 1;
                        flip(&mut self.arena.x_tmr.replica_mut(rep)[e.offset], e.bit);
                    } else {
                        flip(
                            &mut self.solver.vector_mut(CanonVec::Iterate)[e.offset],
                            e.bit,
                        );
                    }
                }
                _ => {
                    if matches!(
                        e.target,
                        FaultTarget::MatrixColid | FaultTarget::MatrixRowidx
                    ) {
                        self.structure_dirty = true;
                    }
                    Injector::apply_to_matrix(e, self.a);
                }
            }
        }
        if events.iter().any(|e| e.target.is_matrix()) {
            self.kernel.invalidate();
            self.image_clean = false;
        }
    }

    /// Phases 2–5 of an iteration: one verified solver step, the TMR
    /// vote, the chunk-boundary verification, convergence acceptance
    /// and checkpointing. `precomputed_first`, when given, serves the
    /// step's first product from a `(column, probe)` pair (only offered
    /// to [`fusable`] lanes — both are bit-identical to what the lane
    /// would compute itself).
    ///
    /// [`fusable`]: ExecutorMachine::fusable
    pub(super) fn finish_iteration(&mut self, precomputed_first: Option<(&[f64], &[f64; 2])>) {
        // 2./3. One step, products verified by the scheme. The
        // iteration is charged `1 + Tverif` per product the step
        // actually ran (ABFT schemes; `verified_products` is the
        // nominal count, but half-step exits and early breakdowns run
        // fewer).
        let t_step = self.rec.start();
        let (step, products_run) = {
            let mut ctx = ResilientCtx {
                a: &mut *self.a,
                kernel: &mut self.kernel,
                scheme: &self.scheme,
                xref: self.hardened.then_some(&self.arena.xref),
                structure_dirty: &mut self.structure_dirty,
                image_clean: &mut self.image_clean,
                precomputed_first,
                xref_scratch: &mut self.arena.xref_scratch,
                q_faults: &self.arena.q_faults,
                stats: &mut self.stats,
                ledger: &mut self.ledger,
                first: true,
                products_run: 0,
                rec: &mut *self.rec,
            };
            let res = self.solver.step(&mut ctx);
            (res, ctx.products_run)
        };
        self.rec.phase(Phase::Step, t_step);
        self.time
            .add(1.0 + self.scheme.iteration_cost(&self.cfg.costs, products_run));
        match step {
            StepResult::Done => {}
            StepResult::Rejected => {
                // Detection already counted by the context.
                self.rollback();
                return;
            }
            StepResult::Breakdown => {
                // Numerical breakdown caused by an undetected
                // perturbation: treat as detection and roll back.
                self.stats.detections += 1;
                self.rec
                    .event(Event::detect(self.stats.executed as u64, ev_via::BREAKDOWN));
                self.rollback();
                return;
            }
        }

        // 4. TMR vote on the vector data (ABFT schemes).
        if self.hardened {
            let t_vote = self.rec.start();
            let vr = self.arena.r_tmr.vote();
            let vx = self.arena.x_tmr.vote();
            self.rec.phase(Phase::TmrVote, t_vote);
            if !vr.is_trusted() || !vx.is_trusted() {
                // Colliding replica faults: detected, not correctable.
                self.stats.detections += 1;
                self.rec
                    .event(Event::detect(self.stats.executed as u64, ev_via::TMR));
                self.rollback();
                return;
            }
            let tmr_fixed = vr.corrected + vx.corrected;
            if tmr_fixed > 0 {
                self.stats.tmr_corrections += tmr_fixed;
                self.rec.event(Event::correct_tmr(
                    self.stats.executed as u64,
                    tmr_fixed as u64,
                ));
                self.ledger.resolve_iteration_where(
                    self.stats.executed,
                    FaultOutcome::Corrected,
                    |rec| {
                        matches!(
                            rec.event.target,
                            FaultTarget::Vector(VectorId::R | VectorId::X)
                        )
                    },
                );
            }
            // Replicas follow the verified update (identical bits to
            // applying the update to each voted replica).
            self.arena
                .r_tmr
                .store(self.solver.vector(CanonVec::Residual));
            self.arena
                .x_tmr
                .store(self.solver.vector(CanonVec::Iterate));
        }

        self.productive += 1;
        self.iters_in_chunk += 1;
        let recursive_converged = self.solver.residual_norm() <= self.threshold;

        // 5. Chunk boundary (or convergence claim): verify, then accept
        // convergence / checkpoint strictly behind the verification.
        if self.iters_in_chunk >= self.d || recursive_converged {
            let chunk_cost = self.scheme.chunk_cost(&self.cfg.costs);
            self.time.add(chunk_cost);
            self.stats.chunk_checks += 1;
            let t_verify = self.rec.start();
            let chunk_ok = self
                .scheme
                .verify_chunk(self.a, &*self.solver, &self.cfg.online_tol);
            self.rec.phase(Phase::ChunkVerify, t_verify);
            // Priced verifications (ONLINE) always leave a trace event;
            // the ABFT schemes' free per-iteration no-op checks only do
            // when they fail (they never should).
            if chunk_cost > 0.0 || !chunk_ok {
                self.rec
                    .event(Event::chunk_verify(self.stats.executed as u64, chunk_ok));
            }
            if !chunk_ok {
                self.stats.detections += 1;
                self.rec
                    .event(Event::detect(self.stats.executed as u64, ev_via::CHUNK));
                self.rollback();
                return;
            }
            self.iters_in_chunk = 0;
            if recursive_converged {
                self.converged = true;
                self.rec.event(Event::converged(
                    self.stats.executed as u64,
                    self.productive as u64,
                ));
                // `break` in the historical loop: the trailing xref
                // re-capture is skipped.
                return;
            }
            self.chunks_since_ckpt += 1;
            if self.chunks_since_ckpt >= self.cfg.checkpoint_interval {
                self.time.add(self.cfg.costs.tcp);
                let t_ckpt = self.rec.start();
                self.solver
                    .snapshot_into(self.productive, self.a, self.arena.slot.begin_save());
                self.arena.slot.commit();
                self.rec.phase(Phase::Checkpoint, t_ckpt);
                self.structure_dirty = false; // checkpoint == live image again
                self.checkpoint_clean = self.image_clean;
                self.stats.checkpoints += 1;
                self.rec.event(Event::checkpoint(
                    self.stats.executed as u64,
                    self.productive as u64,
                ));
                self.guard.note_checkpoint();
                self.chunks_since_ckpt = 0;
            }
        }
        if self.hardened {
            self.arena
                .xref
                .store(self.solver.vector(CanonVec::Direction));
        }
    }

    /// Restores the latest checkpoint (or, when the escalation guard
    /// flags a tainted one, the pristine initial data) into the solver
    /// and the shadows — all in place, no allocation.
    fn rollback(&mut self) {
        self.time.add(self.cfg.costs.trec);
        self.stats.rollbacks += 1;
        let t_rb = self.rec.start();
        if self.guard.must_escalate() {
            // Re-read input data: discard the tainted checkpoint.
            // The escape target's structure is the pristine one,
            // not the (possibly sub-tolerance-corrupted) structure
            // the discarded checkpoint shared with the live image.
            self.arena.slot.save(&self.arena.initial);
            self.structure_dirty = true;
            self.checkpoint_clean = true; // snapshots the pristine a0
            self.fuse_banned = true; // escalated: out of the batch
            self.guard.consecutive_rollbacks = 0;
            self.rec.event(Event::escalate(self.stats.executed as u64));
        }
        self.guard.note_restore();
        let st = self
            .arena
            .slot
            .latest()
            .expect("initial checkpoint always present");
        if self.structure_dirty {
            self.a.copy_image_from(&st.matrix);
        } else {
            self.a.copy_values_from(&st.matrix);
        }
        self.structure_dirty = false;
        self.image_clean = self.checkpoint_clean;
        self.kernel.invalidate(); // rollback replaced the matrix image
        self.solver.restore(st, self.a);
        if self.hardened {
            self.arena
                .r_tmr
                .store(self.solver.vector(CanonVec::Residual));
            self.arena
                .x_tmr
                .store(self.solver.vector(CanonVec::Iterate));
        }
        self.productive = st.iteration;
        self.iters_in_chunk = 0;
        self.chunks_since_ckpt = 0;
        self.ledger.resolve_all_pending(FaultOutcome::RolledBack);
        if self.hardened {
            self.arena
                .xref
                .store(self.solver.vector(CanonVec::Direction));
        }
        self.rec.phase(Phase::Rollback, t_rb);
        self.rec.event(Event::rollback(
            self.stats.executed as u64,
            self.productive as u64,
        ));
    }

    /// Resolves the ledger and assembles the outcome (the historical
    /// epilogue).
    pub(super) fn finish(self) -> ResilientOutcome {
        let ExecutorMachine {
            a0,
            b,
            solver,
            mut ledger,
            stats,
            time,
            converged,
            productive,
            ..
        } = self;
        // Whatever is still pending was never detected.
        ledger.resolve_all_pending(FaultOutcome::Undetected);
        let xv = solver.vector(CanonVec::Iterate).to_vec();
        let tr = true_residual(a0, b, &xv);
        ResilientOutcome {
            converged,
            productive_iterations: productive,
            executed_iterations: stats.executed,
            simulated_time: time.total,
            checkpoints: stats.checkpoints,
            rollbacks: stats.rollbacks,
            forward_corrections: stats.forward_corrections,
            tmr_corrections: stats.tmr_corrections,
            detections: stats.detections,
            product_checks: stats.product_checks,
            chunk_checks: stats.chunk_checks,
            ledger,
            true_residual: tr,
            x: xv,
        }
    }
}

/// Runs the protocol for one solver × scheme combination.
///
/// `solver` must be in the zero-start state over `(a0, b)`, `image`
/// must hold a bit-exact copy of `a0` (the corruptible working image),
/// and `arena` provides the retained buffers — all three come from
/// [`SolverWorkspace::checkout`](crate::SolverWorkspace).
#[allow(clippy::too_many_arguments)]
pub(super) fn run_executor<V: VerificationScheme, R: Recorder>(
    a0: &CsrMatrix,
    b: &[f64],
    cfg: &ResilientConfig,
    injector: Option<&mut Injector>,
    scheme: V,
    solver: &mut dyn IterativeSolver,
    image: &mut CsrMatrix,
    arena: &mut ExecArena,
    rec: &mut R,
) -> ResilientOutcome {
    let mut m = ExecutorMachine::new(a0, b, cfg, injector, scheme, solver, image, arena, rec);
    while m.active() {
        m.begin_iteration();
        m.finish_iteration(None);
    }
    m.finish()
}

//! Resilient CG drivers: the paper's three schemes over one protocol.
//!
//! Shared protocol (Section 4): work proceeds in *chunks* ending with a
//! verification; after `s` verified chunks a checkpoint is taken — so a
//! checkpoint is only ever taken right after a passing verification and
//! **the last checkpoint is always valid** (claim C1). On detection the
//! driver restores the last checkpoint (or the initial state) and
//! re-executes. ABFT-CORRECTION additionally repairs single errors in
//! place and only rolls back when correction fails.
//!
//! Time is accounted in units of `Titer ≡ 1` (the paper's normalization)
//! through [`SimTime`]: each executed iteration costs `1 + Tverif`
//! (ABFT verifies every iteration; ONLINE-DETECTION pays `Tverif` only
//! at chunk ends), checkpoints cost `Tcp`, rollbacks `Trec`.

mod abft;
mod online;

use ftcg_abft::tmr::TmrVector;
use ftcg_checkpoint::{CheckpointStore, MemoryStore, ResilienceCosts, SolverState};
use ftcg_fault::ledger::{FaultLedger, FaultOutcome};
use ftcg_fault::Injector;
use ftcg_kernels::KernelSpec;
use ftcg_model::Scheme;
use ftcg_sparse::{vector, CsrMatrix};

use crate::stopping::StoppingCriterion;
use crate::verify::OnlineTolerances;

/// Configuration of a resilient solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientConfig {
    /// Which scheme drives verification/recovery.
    pub scheme: Scheme,
    /// Chunks per frame (`s`): checkpoint every `s` verified chunks.
    pub checkpoint_interval: usize,
    /// Iterations per chunk (`d`): 1 for the ABFT schemes; ONLINE-
    /// DETECTION verifies every `d` iterations.
    pub verif_interval: usize,
    /// Cost parameters for simulated-time accounting.
    pub costs: ResilienceCosts,
    /// Convergence criterion.
    pub stopping: StoppingCriterion,
    /// Cap on *productive* iterations (the solver's iteration count).
    pub max_productive_iters: usize,
    /// Cap on total executed iterations including re-execution (runaway
    /// guard at extreme fault rates).
    pub max_executed_iters: usize,
    /// Thresholds for Chen's stability tests (ONLINE-DETECTION only).
    pub online_tol: OnlineTolerances,
    /// SpMV backend for the per-iteration product. The default (`csr`)
    /// preserves the historical behavior bit for bit. Non-CSR backends
    /// are re-materialized *defensively* from the live (corruptible) CSR
    /// image before every product, so injected matrix faults reach the
    /// product and the ABFT checksum tests verify the output unchanged;
    /// `auto` is pinned against the pristine matrix at solve start.
    pub kernel: KernelSpec,
}

impl ResilientConfig {
    /// A reasonable configuration for the given scheme with interval `s`.
    pub fn new(scheme: Scheme, checkpoint_interval: usize) -> Self {
        let costs = match scheme {
            Scheme::OnlineDetection => ResilienceCosts::online_default(),
            _ => ResilienceCosts::abft_default(),
        };
        Self {
            scheme,
            checkpoint_interval: checkpoint_interval.max(1),
            verif_interval: 1,
            costs,
            stopping: StoppingCriterion::default_relative(),
            max_productive_iters: 10_000,
            max_executed_iters: 200_000,
            online_tol: OnlineTolerances::default(),
            kernel: KernelSpec::Csr,
        }
    }
}

/// Statistics and results of a resilient solve.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Whether the stopping criterion was met.
    pub converged: bool,
    /// Iteration count of the final state (rollbacks rewind it).
    pub productive_iterations: usize,
    /// Total iterations executed, including re-executed work.
    pub executed_iterations: usize,
    /// Simulated time in `Titer` units: iterations + verifications +
    /// checkpoints + recoveries.
    pub simulated_time: f64,
    /// Checkpoints taken.
    pub checkpoints: usize,
    /// Rollbacks performed.
    pub rollbacks: usize,
    /// Single errors repaired forward by ABFT.
    pub forward_corrections: usize,
    /// Vector-replica faults outvoted by TMR.
    pub tmr_corrections: usize,
    /// Verification failures (each triggers a rollback).
    pub detections: usize,
    /// Ground-truth fault ledger.
    pub ledger: FaultLedger,
    /// True final residual `‖b − A·x‖₂` computed against the *pristine*
    /// input matrix (reporting only; the solver never sees it).
    pub true_residual: f64,
}

/// Simulated-time ledger.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SimTime {
    pub total: f64,
}

impl SimTime {
    pub fn add(&mut self, t: f64) {
        self.total += t;
    }
}

/// Mutable run counters shared by the drivers.
#[derive(Debug, Default)]
pub(crate) struct RunStats {
    pub executed: usize,
    pub checkpoints: usize,
    pub rollbacks: usize,
    pub forward_corrections: usize,
    pub tmr_corrections: usize,
    pub detections: usize,
}

/// Solves `Ax = b` (SPD `A`, zero initial guess) under the configured
/// resilience scheme, optionally with fault injection. Without an
/// injector the run is fault-free (useful to measure pure overheads).
pub fn solve_resilient(
    a: &CsrMatrix,
    b: &[f64],
    cfg: &ResilientConfig,
    injector: Option<&mut Injector>,
) -> ResilientOutcome {
    assert!(a.is_square(), "resilient solve: matrix must be square");
    assert_eq!(b.len(), a.n_rows(), "resilient solve: b length mismatch");
    assert!(cfg.checkpoint_interval >= 1, "need s >= 1");
    assert!(cfg.verif_interval >= 1, "need d >= 1");
    match cfg.scheme {
        Scheme::OnlineDetection => online::solve_online(a, b, cfg, injector),
        Scheme::AbftDetection => abft::solve_abft(a, b, cfg, injector, false),
        Scheme::AbftCorrection => abft::solve_abft(a, b, cfg, injector, true),
    }
}

/// Tracks whether the latest checkpoint can still be trusted.
///
/// A verification can pass while the state carries a *sub-tolerance*
/// corruption (the price of the rigorous no-false-positive bound); that
/// corruption is then checkpointed and may cross the detection threshold
/// many iterations later as the Krylov directions rotate. Rolling back
/// to the tainted checkpoint then re-detects forever. The tell-tale is a
/// detection with **zero faults injected since the last restore** —
/// replay is deterministic, so the failure must come from the restored
/// state itself — in which case the driver escalates to the paper's
/// first-frame recovery: "we recover by reading initial data again".
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct EscalationGuard {
    /// Faults injected since the last restore/checkpoint boundary.
    pub faults_since_restore: usize,
    /// Consecutive rollbacks without a new checkpoint (hard safety cap).
    pub consecutive_rollbacks: usize,
}

impl EscalationGuard {
    /// Hard cap on consecutive rollbacks before forcing a restart even
    /// when new faults kept arriving (extremely high rates).
    const MAX_CONSECUTIVE: usize = 25;

    /// `true` when the next rollback should restart from the input data.
    pub fn must_escalate(&self) -> bool {
        self.faults_since_restore == 0 || self.consecutive_rollbacks >= Self::MAX_CONSECUTIVE
    }

    /// Note an iteration's injected fault count.
    pub fn note_faults(&mut self, n: usize) {
        self.faults_since_restore += n;
    }

    /// Note that a fresh checkpoint was taken (verified progress).
    pub fn note_checkpoint(&mut self) {
        self.consecutive_rollbacks = 0;
    }

    /// Note a restore; returns ready-to-count state for the replay.
    pub fn note_restore(&mut self) {
        self.faults_since_restore = 0;
        self.consecutive_rollbacks += 1;
    }
}

/// Restores solver state from the latest checkpoint — or, when the guard
/// says the checkpoint is tainted, from the pristine initial data (which
/// also resets the checkpoint store). Returns the restored
/// `(productive_iteration, rnorm_sq)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rollback(
    store: &mut MemoryStore,
    initial: &SolverState,
    guard: &mut EscalationGuard,
    a: &mut CsrMatrix,
    x: &mut TmrVector,
    r: &mut TmrVector,
    p: &mut Vec<f64>,
    time: &mut SimTime,
    stats: &mut RunStats,
    ledger: &mut FaultLedger,
    trec: f64,
) -> (usize, f64) {
    time.add(trec);
    stats.rollbacks += 1;
    let st = if guard.must_escalate() {
        // Re-read input data: discard the tainted checkpoint entirely.
        store.save(initial).expect("memory store cannot fail");
        guard.consecutive_rollbacks = 0;
        initial.clone()
    } else {
        store
            .load()
            .expect("memory store cannot fail")
            .expect("initial checkpoint always present")
    };
    guard.note_restore();
    *a = st.matrix.clone();
    x.store(&st.x);
    r.store(&st.r);
    p.clear();
    p.extend_from_slice(&st.p);
    ledger.resolve_all_pending(FaultOutcome::RolledBack);
    (st.iteration, st.rnorm_sq)
}

/// Computes the true residual norm against the pristine matrix.
pub(crate) fn true_residual(a0: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
    let mut r = b.to_vec();
    let ax = a0.spmv(x);
    vector::sub_assign(&mut r, &ax);
    vector::norm2(&r)
}

/// Takes a checkpoint (always immediately after a passing verification —
/// claim C1 is enforced by the call sites, which are all directly behind
/// a verified chunk boundary).
#[allow(clippy::too_many_arguments)]
pub(crate) fn take_checkpoint(
    store: &mut MemoryStore,
    iteration: usize,
    x: &[f64],
    r: &[f64],
    p: &[f64],
    rnorm_sq: f64,
    a: &CsrMatrix,
    time: &mut SimTime,
    stats: &mut RunStats,
    tcp: f64,
) {
    time.add(tcp);
    store
        .save(&SolverState::capture(iteration, x, r, p, rnorm_sq, a))
        .expect("memory store cannot fail");
    stats.checkpoints += 1;
}

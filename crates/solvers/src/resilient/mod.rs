//! Resilient solves: one scheme-generic executor over steppable solver
//! state machines.
//!
//! The paper's protocol (Section 4) is solver-agnostic: work proceeds
//! in *chunks* ending with a verification; after `s` verified chunks a
//! checkpoint is taken — so a checkpoint is only ever taken right after
//! a passing verification and **the last checkpoint is always valid**
//! (claim C1). On detection the executor restores the last checkpoint
//! (or the initial state) and re-executes; ABFT-CORRECTION additionally
//! repairs single errors in place and only rolls back when correction
//! fails.
//!
//! The implementation mirrors that factoring:
//!
//! * [`executor`] — the one protocol loop, generic over both axes:
//!   which solver iterates and how iterations are verified;
//! * [`scheme`] — the [`VerificationScheme`] trait with the paper's
//!   three instantiations ([`AbftDetection`], [`AbftCorrection`],
//!   [`OnlineDetection`]);
//! * the solver axis is any [`IterativeSolver`](crate::machine)
//!   state machine — CG, PCG, BiCGStab and CGNE all compose with every
//!   scheme × checkpoint policy × kernel ([`ResilientConfig::solver`]
//!   picks one).
//!
//! Time is accounted in units of `Titer ≡ 1` (the paper's
//! normalization) through [`SimTime`]: under the ABFT schemes each
//! executed iteration costs `1 + n·Tverif` where `n` is the number of
//! checksum-verified products it actually ran (1 for CG/PCG/CGNE, up
//! to 2 for BiCGStab); ONLINE-DETECTION pays `Tverif` only at chunk
//! ends. Checkpoints cost `Tcp`, rollbacks `Trec`.

pub mod batch;
pub mod executor;
pub mod scheme;

use ftcg_checkpoint::ResilienceCosts;
use ftcg_fault::ledger::FaultLedger;
use ftcg_fault::Injector;
use ftcg_kernels::KernelSpec;
use ftcg_model::Scheme;
use ftcg_sparse::{vector, CsrMatrix};
use ftcg_telemetry::{NoopRecorder, Recorder};

pub use scheme::{AbftCorrection, AbftDetection, OnlineDetection, VerificationScheme};

use crate::machine::SolverKind;
use crate::stopping::StoppingCriterion;
use crate::verify::OnlineTolerances;
use crate::workspace::SolverWorkspace;

/// A rejected resilient configuration (the typed form surfaced by the
/// CLI and the campaign engine instead of a silent clamp).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResilientConfigError {
    /// `s = 0`: a frame must contain at least one verified chunk.
    ZeroCheckpointInterval,
    /// `d = 0`: a chunk must contain at least one iteration.
    ZeroVerifInterval,
}

impl std::fmt::Display for ResilientConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilientConfigError::ZeroCheckpointInterval => {
                write!(f, "checkpoint interval s must be >= 1 (got 0)")
            }
            ResilientConfigError::ZeroVerifInterval => {
                write!(f, "verification interval d must be >= 1 (got 0)")
            }
        }
    }
}

impl std::error::Error for ResilientConfigError {}

/// Configuration of a resilient solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientConfig {
    /// Which scheme drives verification/recovery.
    pub scheme: Scheme,
    /// Which solver iterates under the protocol.
    pub solver: SolverKind,
    /// Chunks per frame (`s`): checkpoint every `s` verified chunks.
    pub checkpoint_interval: usize,
    /// Iterations per chunk (`d`): ONLINE-DETECTION verifies every `d`
    /// iterations; the ABFT schemes verify every iteration and ignore
    /// this field.
    pub verif_interval: usize,
    /// Cost parameters for simulated-time accounting.
    pub costs: ResilienceCosts,
    /// Convergence criterion.
    pub stopping: StoppingCriterion,
    /// Cap on *productive* iterations (the solver's iteration count).
    pub max_productive_iters: usize,
    /// Cap on total executed iterations including re-execution (runaway
    /// guard at extreme fault rates).
    pub max_executed_iters: usize,
    /// Thresholds for the stability tests (ONLINE-DETECTION only).
    pub online_tol: OnlineTolerances,
    /// SpMV backend for the per-iteration product. The default (`csr`)
    /// preserves the historical behavior bit for bit. Non-CSR backends
    /// are re-materialized *defensively* from the live (corruptible) CSR
    /// image before every product, so injected matrix faults reach the
    /// product and the ABFT checksum tests verify the output unchanged;
    /// `auto` is pinned against the pristine matrix at solve start.
    pub kernel: KernelSpec,
}

impl ResilientConfig {
    /// A reasonable configuration for the given scheme with interval
    /// `s`, solving with CG.
    ///
    /// # Panics
    /// Panics if `checkpoint_interval == 0` — use
    /// [`ResilientConfig::try_new`] to get the typed error instead.
    pub fn new(scheme: Scheme, checkpoint_interval: usize) -> Self {
        Self::try_new(scheme, checkpoint_interval)
            .expect("checkpoint interval must be >= 1 (see ResilientConfig::try_new)")
    }

    /// Like [`ResilientConfig::new`] but rejects a zero interval with a
    /// typed error instead of panicking (historically the zero was
    /// silently clamped to 1, masking bad specs).
    pub fn try_new(
        scheme: Scheme,
        checkpoint_interval: usize,
    ) -> Result<Self, ResilientConfigError> {
        if checkpoint_interval == 0 {
            return Err(ResilientConfigError::ZeroCheckpointInterval);
        }
        let costs = match scheme {
            Scheme::OnlineDetection => ResilienceCosts::online_default(),
            _ => ResilienceCosts::abft_default(),
        };
        Ok(Self {
            scheme,
            solver: SolverKind::Cg,
            checkpoint_interval,
            verif_interval: 1,
            costs,
            stopping: StoppingCriterion::default_relative(),
            max_productive_iters: 10_000,
            max_executed_iters: 200_000,
            online_tol: OnlineTolerances::default(),
            kernel: KernelSpec::Csr,
        })
    }

    /// Checks the interval invariants, returning the typed error a
    /// front end can surface (`solve_resilient` enforces the same
    /// invariants with a panic).
    pub fn validate(&self) -> Result<(), ResilientConfigError> {
        if self.checkpoint_interval == 0 {
            return Err(ResilientConfigError::ZeroCheckpointInterval);
        }
        if self.verif_interval == 0 {
            return Err(ResilientConfigError::ZeroVerifInterval);
        }
        Ok(())
    }
}

/// Statistics and results of a resilient solve.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Whether the stopping criterion was met.
    pub converged: bool,
    /// Iteration count of the final state (rollbacks rewind it).
    pub productive_iterations: usize,
    /// Total iterations executed, including re-executed work.
    pub executed_iterations: usize,
    /// Simulated time in `Titer` units: iterations + verifications +
    /// checkpoints + recoveries.
    pub simulated_time: f64,
    /// Checkpoints taken.
    pub checkpoints: usize,
    /// Rollbacks performed.
    pub rollbacks: usize,
    /// Single errors repaired forward by ABFT.
    pub forward_corrections: usize,
    /// Vector-replica faults outvoted by TMR.
    pub tmr_corrections: usize,
    /// Verification failures (each triggers a rollback).
    pub detections: usize,
    /// Checksum product verifications run (the ABFT schemes check every
    /// forward product; BiCGStab runs two per full iteration, so its
    /// `Tverif` bill is `tverif × product_checks`, not `tverif ×
    /// executed`). Zero under ONLINE-DETECTION, whose products run
    /// unverified.
    pub product_checks: usize,
    /// Chunk-boundary verifications run (one per chunk end reached —
    /// priced at [`VerificationScheme::chunk_cost`] each, which is zero
    /// for the ABFT schemes and `tverif` for ONLINE-DETECTION).
    pub chunk_checks: usize,
    /// Ground-truth fault ledger.
    pub ledger: FaultLedger,
    /// True final residual `‖b − A·x‖₂` computed against the *pristine*
    /// input matrix (reporting only; the solver never sees it).
    pub true_residual: f64,
}

/// Simulated-time ledger.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SimTime {
    pub total: f64,
}

impl SimTime {
    pub fn add(&mut self, t: f64) {
        self.total += t;
    }
}

/// Mutable run counters shared by the executor and its contexts.
#[derive(Debug, Default)]
pub(crate) struct RunStats {
    pub executed: usize,
    pub checkpoints: usize,
    pub rollbacks: usize,
    pub forward_corrections: usize,
    pub tmr_corrections: usize,
    pub detections: usize,
    pub product_checks: usize,
    pub chunk_checks: usize,
}

/// Solves `Ax = b` (zero initial guess) under the configured resilience
/// scheme and solver, optionally with fault injection. Without an
/// injector the run is fault-free (useful to measure pure overheads).
///
/// Allocates a fresh [`SolverWorkspace`] per call; repetition loops
/// should hold one workspace and call [`solve_resilient_in`] instead —
/// same results bit for bit, no per-repetition heap traffic.
pub fn solve_resilient(
    a: &CsrMatrix,
    b: &[f64],
    cfg: &ResilientConfig,
    injector: Option<&mut Injector>,
) -> ResilientOutcome {
    let mut ws = SolverWorkspace::new();
    solve_resilient_in(a, b, cfg, injector, &mut ws)
}

/// [`solve_resilient`] drawing every solve-scoped buffer — the solver
/// machine, the corruptible matrix image, the checkpoint slot, the TMR
/// shadows — from a caller-retained [`SolverWorkspace`]. Reusing one
/// workspace across repetitions produces bit-identical
/// [`ResilientOutcome`]s to fresh-allocation solves (the workspace
/// reuse contract; see [`crate::workspace`]) while keeping the hot
/// path off the allocator entirely.
pub fn solve_resilient_in(
    a: &CsrMatrix,
    b: &[f64],
    cfg: &ResilientConfig,
    injector: Option<&mut Injector>,
    ws: &mut SolverWorkspace,
) -> ResilientOutcome {
    solve_resilient_recorded(a, b, cfg, injector, ws, &mut NoopRecorder)
}

/// [`solve_resilient_in`] with a telemetry [`Recorder`] observing the
/// executor's phases and protocol events.
///
/// The recorder is strictly an observer: it never influences control
/// flow, so the returned [`ResilientOutcome`] is bit-identical to an
/// un-instrumented solve. The executor is generic over the recorder
/// type — passing [`NoopRecorder`] monomorphizes every telemetry call
/// to nothing (which is exactly what [`solve_resilient_in`] does), and
/// an [`ActiveRecorder`](ftcg_telemetry::ActiveRecorder) records
/// without allocating (see the `Recorder` contract in
/// [`ftcg_telemetry::recorder`]).
pub fn solve_resilient_recorded<R: Recorder>(
    a: &CsrMatrix,
    b: &[f64],
    cfg: &ResilientConfig,
    injector: Option<&mut Injector>,
    ws: &mut SolverWorkspace,
    rec: &mut R,
) -> ResilientOutcome {
    assert!(a.is_square(), "resilient solve: matrix must be square");
    assert_eq!(b.len(), a.n_rows(), "resilient solve: b length mismatch");
    if let Err(e) = cfg.validate() {
        panic!("resilient solve: {e}");
    }
    let (solver, image, arena) = ws.checkout(cfg.solver, a, b);
    match cfg.scheme {
        Scheme::OnlineDetection => executor::run_executor(
            a,
            b,
            cfg,
            injector,
            OnlineDetection::new(a),
            solver,
            image,
            arena,
            rec,
        ),
        Scheme::AbftDetection => executor::run_executor(
            a,
            b,
            cfg,
            injector,
            AbftDetection::new(a),
            solver,
            image,
            arena,
            rec,
        ),
        Scheme::AbftCorrection => executor::run_executor(
            a,
            b,
            cfg,
            injector,
            AbftCorrection::new(a),
            solver,
            image,
            arena,
            rec,
        ),
    }
}

/// Tracks whether the latest checkpoint can still be trusted.
///
/// A verification can pass while the state carries a *sub-tolerance*
/// corruption (the price of the rigorous no-false-positive bound); that
/// corruption is then checkpointed and may cross the detection threshold
/// many iterations later as the Krylov directions rotate. Rolling back
/// to the tainted checkpoint then re-detects forever. The tell-tale is a
/// detection with **zero faults injected since the last restore** —
/// replay is deterministic, so the failure must come from the restored
/// state itself — in which case the executor escalates to the paper's
/// first-frame recovery: "we recover by reading initial data again".
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct EscalationGuard {
    /// Faults injected since the last restore/checkpoint boundary.
    pub faults_since_restore: usize,
    /// Consecutive rollbacks without a new checkpoint (hard safety cap).
    pub consecutive_rollbacks: usize,
}

impl EscalationGuard {
    /// Hard cap on consecutive rollbacks before forcing a restart even
    /// when new faults kept arriving (extremely high rates).
    const MAX_CONSECUTIVE: usize = 25;

    /// `true` when the next rollback should restart from the input data.
    pub fn must_escalate(&self) -> bool {
        self.faults_since_restore == 0 || self.consecutive_rollbacks >= Self::MAX_CONSECUTIVE
    }

    /// Note an iteration's injected fault count.
    pub fn note_faults(&mut self, n: usize) {
        self.faults_since_restore += n;
    }

    /// Note that a fresh checkpoint was taken (verified progress).
    pub fn note_checkpoint(&mut self) {
        self.consecutive_rollbacks = 0;
    }

    /// Note a restore; returns ready-to-count state for the replay.
    pub fn note_restore(&mut self) {
        self.faults_since_restore = 0;
        self.consecutive_rollbacks += 1;
    }
}

/// Computes the true residual norm against the pristine matrix.
pub(crate) fn true_residual(a0: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
    let mut r = b.to_vec();
    let ax = a0.spmv(x);
    vector::sub_assign(&mut r, &ax);
    vector::norm2(&r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_rejects_zero_interval() {
        let e = ResilientConfig::try_new(Scheme::AbftCorrection, 0);
        assert_eq!(e, Err(ResilientConfigError::ZeroCheckpointInterval));
        assert!(e.unwrap_err().to_string().contains(">= 1"));
        assert!(ResilientConfig::try_new(Scheme::AbftCorrection, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "checkpoint interval must be >= 1")]
    fn new_panics_on_zero_interval() {
        let _ = ResilientConfig::new(Scheme::AbftDetection, 0);
    }

    #[test]
    fn validate_rejects_zero_intervals() {
        let mut cfg = ResilientConfig::new(Scheme::OnlineDetection, 5);
        assert_eq!(cfg.validate(), Ok(()));
        cfg.verif_interval = 0;
        assert_eq!(cfg.validate(), Err(ResilientConfigError::ZeroVerifInterval));
        cfg.verif_interval = 1;
        cfg.checkpoint_interval = 0;
        assert_eq!(
            cfg.validate(),
            Err(ResilientConfigError::ZeroCheckpointInterval)
        );
    }

    #[test]
    fn default_solver_is_cg() {
        let cfg = ResilientConfig::new(Scheme::AbftCorrection, 10);
        assert_eq!(cfg.solver, SolverKind::Cg);
        assert_eq!(cfg.kernel, KernelSpec::Csr);
    }
}

//! The ONLINE-DETECTION driver — Chen's scheme extended (as in the
//! paper) to checkpoint the sparse matrix as well.
//!
//! Iterations run *unprotected*; every `d` iterations (a chunk) the
//! stability tests run (orthogonality + recomputed residual — the
//! recomputation is the dominant verification cost `Tverif`); every `s`
//! verified chunks a checkpoint is taken. Any detection rolls the run
//! back to the last checkpoint, which also restores the matrix image.
//! Convergence is only accepted after a passing verification, so a
//! corrupted residual cannot fake success.

use ftcg_checkpoint::{CheckpointStore, MemoryStore, SolverState};
use ftcg_fault::ledger::{FaultLedger, FaultOutcome};
use ftcg_fault::target::{FaultTarget, VectorId};
use ftcg_fault::{FaultEvent, Injector};
use ftcg_kernels::DefensiveProduct;
use ftcg_sparse::{vector, CsrMatrix};

use super::{true_residual, EscalationGuard, ResilientConfig, ResilientOutcome, RunStats, SimTime};
use crate::verify::verify_online;

/// Applies a fault plan to the fully unprotected state.
fn apply_faults(
    events: &[FaultEvent],
    a: &mut CsrMatrix,
    p: &mut [f64],
    q: &mut [f64],
    r: &mut [f64],
    x: &mut [f64],
) {
    for e in events {
        let flip = |v: &mut f64, bit: u32| *v = f64::from_bits(v.to_bits() ^ (1u64 << bit));
        match e.target {
            FaultTarget::Vector(VectorId::P) => flip(&mut p[e.offset], e.bit),
            FaultTarget::Vector(VectorId::Q) => flip(&mut q[e.offset], e.bit),
            FaultTarget::Vector(VectorId::R) => flip(&mut r[e.offset], e.bit),
            FaultTarget::Vector(VectorId::X) => flip(&mut x[e.offset], e.bit),
            _ => {
                Injector::apply_to_matrix(e, a);
            }
        }
    }
}

pub(super) fn solve_online(
    a0: &CsrMatrix,
    b: &[f64],
    cfg: &ResilientConfig,
    mut injector: Option<&mut Injector>,
) -> ResilientOutcome {
    let n = a0.n_rows();
    let d = cfg.verif_interval;
    let norm1_a = a0.norm1(); // from the clean matrix, once

    // Pin `auto` on pristine data; conversions are cached and dropped
    // whenever the matrix image mutates (matrix fault or restore).
    let mut kernel = DefensiveProduct::new(cfg.kernel.resolve(a0));

    let mut a = a0.clone();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // x0 = 0
    let mut p = r.clone();
    let mut q = vec![0.0; n];
    let mut rnorm_sq = vector::norm2_sq(&r);
    let threshold = cfg
        .stopping
        .threshold(a0, vector::norm2(b), rnorm_sq.sqrt());

    let initial = SolverState::capture(0, &x, &r, &p, rnorm_sq, a0);
    let mut store = MemoryStore::new();
    store.save(&initial).unwrap();
    let mut guard = EscalationGuard::default();

    let mut time = SimTime::default();
    let mut stats = RunStats::default();
    let mut ledger = FaultLedger::new();
    let mut productive = 0usize;
    let mut iters_in_chunk = 0usize;
    let mut chunks_since_ckpt = 0usize;
    let mut converged = rnorm_sq.sqrt() <= threshold;

    // Restores the latest checkpoint into the plain-vector state — or,
    // when the escalation guard flags a tainted checkpoint (detection
    // with no new faults since the restore: deterministic replay), the
    // pristine initial data.
    macro_rules! restore {
        () => {{
            time.add(cfg.costs.trec);
            stats.rollbacks += 1;
            let st = if guard.must_escalate() {
                store.save(&initial).unwrap();
                initial.clone()
            } else {
                store.load().unwrap().unwrap()
            };
            guard.note_restore();
            a = st.matrix.clone();
            kernel.invalidate(); // restore replaced the matrix image
            x.copy_from_slice(&st.x);
            r.copy_from_slice(&st.r);
            p.copy_from_slice(&st.p);
            rnorm_sq = st.rnorm_sq;
            productive = st.iteration;
            iters_in_chunk = 0;
            chunks_since_ckpt = 0;
            ledger.resolve_all_pending(FaultOutcome::RolledBack);
        }};
    }

    while !converged
        && productive < cfg.max_productive_iters
        && stats.executed < cfg.max_executed_iters
    {
        stats.executed += 1;
        time.add(1.0);

        let events = injector
            .as_deref_mut()
            .map(|i| i.plan_iteration())
            .unwrap_or_default();
        for e in &events {
            ledger.record(stats.executed, *e);
        }
        guard.note_faults(events.len());
        apply_faults(&events, &mut a, &mut p, &mut q, &mut r, &mut x);
        if events.iter().any(|e| e.target.is_matrix()) {
            kernel.invalidate();
        }

        // Unprotected CG iteration (defensive dispatch only for memory
        // safety; every backend computes exactly the plain product on
        // clean data).
        kernel.product(&a, &p, &mut q);
        let pq = vector::dot(&p, &q);
        if !pq.is_finite() || pq <= 0.0 {
            stats.detections += 1;
            restore!();
            continue;
        }
        let alpha = rnorm_sq / pq;
        vector::axpy(alpha, &p, &mut x);
        vector::axpy(-alpha, &q, &mut r);
        let new_rnorm_sq = vector::norm2_sq(&r);
        let beta = new_rnorm_sq / rnorm_sq;
        rnorm_sq = new_rnorm_sq;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        productive += 1;
        iters_in_chunk += 1;

        let mut verified_this_chunk = false;
        let recursive_converged = rnorm_sq.is_finite() && rnorm_sq.sqrt() <= threshold;

        if iters_in_chunk >= d || recursive_converged {
            // Chunk boundary (or convergence claim): verify.
            time.add(cfg.costs.tverif);
            let verdict = verify_online(&a, b, &x, &r, &p, &q, norm1_a, &cfg.online_tol);
            if verdict.detected {
                stats.detections += 1;
                restore!();
                continue;
            }
            verified_this_chunk = true;
            iters_in_chunk = 0;
        }

        if recursive_converged {
            // Verification above passed: accept convergence.
            converged = true;
            break;
        }

        if verified_this_chunk {
            chunks_since_ckpt += 1;
            if chunks_since_ckpt >= cfg.checkpoint_interval {
                super::take_checkpoint(
                    &mut store,
                    productive,
                    &x,
                    &r,
                    &p,
                    rnorm_sq,
                    &a,
                    &mut time,
                    &mut stats,
                    cfg.costs.tcp,
                );
                guard.note_checkpoint();
                chunks_since_ckpt = 0;
            }
        }
    }

    ledger.resolve_all_pending(FaultOutcome::Undetected);
    let tr = true_residual(a0, b, &x);
    ResilientOutcome {
        converged,
        productive_iterations: productive,
        executed_iterations: stats.executed,
        simulated_time: time.total,
        checkpoints: stats.checkpoints,
        rollbacks: stats.rollbacks,
        forward_corrections: 0,
        tmr_corrections: 0,
        detections: stats.detections,
        ledger,
        true_residual: tr,
        x,
    }
}

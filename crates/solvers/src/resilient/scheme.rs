//! The [`VerificationScheme`] trait: what the paper's three schemes
//! plug into the generic [`executor`](super::executor).
//!
//! A scheme answers four questions the chunk/verify/checkpoint/rollback
//! protocol asks:
//!
//! 1. *how is each forward product verified* ([`check_product`]) — the
//!    ABFT schemes run the checksum tests (and, for correction, repair
//!    single errors in place); ONLINE-DETECTION trusts products
//!    blindly;
//! 2. *how is a chunk boundary verified* ([`verify_chunk`]) — Chen's
//!    stability tests for ONLINE-DETECTION; trivially clean for the
//!    ABFT schemes, whose products were already verified inline;
//! 3. *what does an iteration / a chunk verification cost* in the
//!    simulated-time model ([`iteration_cost`], [`chunk_cost`]);
//! 4. *which state is hardened* ([`hardened_vectors`]) — the ABFT
//!    schemes keep `r`/`x` under TMR and model product-output faults as
//!    striking the verified product; ONLINE-DETECTION leaves every
//!    vector plainly exposed.
//!
//! [`check_product`]: VerificationScheme::check_product
//! [`verify_chunk`]: VerificationScheme::verify_chunk
//! [`iteration_cost`]: VerificationScheme::iteration_cost
//! [`chunk_cost`]: VerificationScheme::chunk_cost
//! [`hardened_vectors`]: VerificationScheme::hardened_vectors

use ftcg_abft::{ProtectedSpmv, SingleChecksum, SpmvOutcome, XRef};
use ftcg_checkpoint::ResilienceCosts;
use ftcg_model::Scheme;
use ftcg_sparse::CsrMatrix;

use crate::machine::IterativeSolver;
use crate::verify::OnlineTolerances;

/// Outcome of scheme verification of one forward product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductCheck {
    /// All tests passed; nothing to count.
    Clean,
    /// Tests tripped but the recheck after the correction attempt came
    /// back clean (counts a detection, no correction).
    FalseAlarm,
    /// A single error was repaired in place — the matrix arrays, the
    /// input vector or the output may have been mutated.
    Corrected,
    /// Unrecoverable: the caller must roll back.
    Rejected,
}

/// One of the paper's verification/recovery schemes, pluggable into the
/// generic executor (see the module docs).
pub trait VerificationScheme {
    /// The model-level scheme identity.
    fn scheme(&self) -> Scheme;

    /// Simulated time charged on top of the unit iteration cost.
    /// `verified_products` is the number of checksum-verified products
    /// the iteration *actually executed* (at most the solver's nominal
    /// [`IterativeSolver::verified_products`]; a half-step exit or an
    /// early breakdown runs fewer).
    fn iteration_cost(&self, costs: &ResilienceCosts, verified_products: usize) -> f64;

    /// `true` when `r`/`x` live under TMR and product-output faults
    /// strike the verified product (the ABFT protocols); `false` leaves
    /// every canonical vector plainly exposed (ONLINE-DETECTION).
    fn hardened_vectors(&self) -> bool;

    /// `true` when a non-clean [`VerificationScheme::check_product`]
    /// may have *mutated* the matrix arrays — indices included — as
    /// ABFT-CORRECTION's repair attempt does. Pure detection schemes
    /// keep the default `false`, which lets the executor's rollback
    /// keep its values-only fast restore when only value faults struck.
    fn check_may_mutate(&self) -> bool {
        false
    }

    /// Iterations per chunk: the configured `d` for ONLINE-DETECTION,
    /// always 1 for the ABFT schemes (which verify every iteration).
    fn chunk_len(&self, verif_interval: usize) -> usize;

    /// Simulated cost of one chunk-boundary verification.
    fn chunk_cost(&self, costs: &ResilienceCosts) -> f64;

    /// Verifies (and possibly repairs) one forward product `y = A·x`
    /// computed from the live matrix image; `xref` is the trusted copy
    /// of the input captured in reliable memory before this iteration's
    /// faults struck.
    ///
    /// `probe`, when given, is the ABFT output probe
    /// `[Σᵢ yᵢ, Σᵢ (i+1)·yᵢ]` accumulated by a fused product kernel
    /// over exactly the bits currently in `y` (see
    /// [`ftcg_sparse::fused::probe_of`]); the ABFT schemes then skip
    /// their own sweep over the output. Callers that mutated `y` after
    /// the product (deferred fault flips) must pass `None` — the scheme
    /// falls back to sweeping `y` itself, so the outcome is identical
    /// either way.
    fn check_product(
        &self,
        a: &mut CsrMatrix,
        x: &mut [f64],
        xref: &XRef,
        y: &mut [f64],
        probe: Option<&[f64; 2]>,
    ) -> ProductCheck;

    /// Chunk-boundary whole-state verification; `true` means the state
    /// is trusted (a checkpoint may be taken, convergence may be
    /// accepted).
    fn verify_chunk(
        &self,
        a: &CsrMatrix,
        solver: &dyn IterativeSolver,
        tol: &OnlineTolerances,
    ) -> bool;
}

/// ABFT-DETECTION: single-checksum verification of every product.
pub struct AbftDetection {
    single: SingleChecksum,
}

impl AbftDetection {
    /// Reliable once-per-matrix checksum setup from the pristine `a0`.
    pub fn new(a0: &CsrMatrix) -> Self {
        AbftDetection {
            single: SingleChecksum::new(a0),
        }
    }
}

impl VerificationScheme for AbftDetection {
    fn scheme(&self) -> Scheme {
        Scheme::AbftDetection
    }

    fn iteration_cost(&self, costs: &ResilienceCosts, verified_products: usize) -> f64 {
        costs.tverif * verified_products as f64
    }

    fn hardened_vectors(&self) -> bool {
        true
    }

    fn chunk_len(&self, _verif_interval: usize) -> usize {
        1
    }

    fn chunk_cost(&self, _costs: &ResilienceCosts) -> f64 {
        0.0
    }

    fn check_product(
        &self,
        a: &mut CsrMatrix,
        x: &mut [f64],
        xref: &XRef,
        y: &mut [f64],
        probe: Option<&[f64; 2]>,
    ) -> ProductCheck {
        let outcome = match probe {
            Some(p) => self.single.verify_probed(a, x, xref, p),
            None => self.single.verify(a, x, xref, y),
        };
        if outcome.is_trusted() {
            ProductCheck::Clean
        } else {
            ProductCheck::Rejected
        }
    }

    fn verify_chunk(
        &self,
        _a: &CsrMatrix,
        _solver: &dyn IterativeSolver,
        _tol: &OnlineTolerances,
    ) -> bool {
        true // every product of the chunk was already verified
    }
}

/// ABFT-CORRECTION: dual weighted checksums — detect two errors,
/// correct one forward, roll back only when correction fails.
pub struct AbftCorrection {
    protected: ProtectedSpmv,
}

impl AbftCorrection {
    /// Reliable once-per-matrix checksum setup from the pristine `a0`.
    pub fn new(a0: &CsrMatrix) -> Self {
        AbftCorrection {
            protected: ProtectedSpmv::new(a0),
        }
    }
}

impl VerificationScheme for AbftCorrection {
    fn scheme(&self) -> Scheme {
        Scheme::AbftCorrection
    }

    fn check_may_mutate(&self) -> bool {
        true // the repair attempt rewrites arrays in place
    }

    fn iteration_cost(&self, costs: &ResilienceCosts, verified_products: usize) -> f64 {
        costs.tverif * verified_products as f64
    }

    fn hardened_vectors(&self) -> bool {
        true
    }

    fn chunk_len(&self, _verif_interval: usize) -> usize {
        1
    }

    fn chunk_cost(&self, _costs: &ResilienceCosts) -> f64 {
        0.0
    }

    fn check_product(
        &self,
        a: &mut CsrMatrix,
        x: &mut [f64],
        xref: &XRef,
        y: &mut [f64],
        probe: Option<&[f64; 2]>,
    ) -> ProductCheck {
        let res = match probe {
            Some(p) => self.protected.verify_probed(a, x, xref, p),
            None => self.protected.verify(a, x, xref, y),
        };
        if res.clean() {
            return ProductCheck::Clean;
        }
        // Correction may repair (i.e. mutate) the matrix arrays, the
        // input or the output in place.
        match self.protected.correct(a, x, xref, y, &res) {
            SpmvOutcome::Corrected(_) => ProductCheck::Corrected,
            SpmvOutcome::Clean => ProductCheck::FalseAlarm,
            SpmvOutcome::Detected(_) => ProductCheck::Rejected,
        }
    }

    fn verify_chunk(
        &self,
        _a: &CsrMatrix,
        _solver: &dyn IterativeSolver,
        _tol: &OnlineTolerances,
    ) -> bool {
        true
    }
}

/// ONLINE-DETECTION: unprotected iterations, Chen's stability tests at
/// chunk boundaries.
pub struct OnlineDetection {
    /// 1-norm of the *clean* matrix, computed once at setup (the
    /// working matrix may carry wild column indices).
    norm1_a: f64,
}

impl OnlineDetection {
    /// Captures the clean-matrix norm the residual test scales by.
    pub fn new(a0: &CsrMatrix) -> Self {
        OnlineDetection {
            norm1_a: a0.norm1(),
        }
    }
}

impl VerificationScheme for OnlineDetection {
    fn scheme(&self) -> Scheme {
        Scheme::OnlineDetection
    }

    fn iteration_cost(&self, _costs: &ResilienceCosts, _verified_products: usize) -> f64 {
        0.0 // verification is paid at chunk ends only
    }

    fn hardened_vectors(&self) -> bool {
        false
    }

    fn chunk_len(&self, verif_interval: usize) -> usize {
        verif_interval
    }

    fn chunk_cost(&self, costs: &ResilienceCosts) -> f64 {
        costs.tverif
    }

    fn check_product(
        &self,
        _a: &mut CsrMatrix,
        _x: &mut [f64],
        _xref: &XRef,
        _y: &mut [f64],
        _probe: Option<&[f64; 2]>,
    ) -> ProductCheck {
        ProductCheck::Clean // products run unverified
    }

    fn verify_chunk(
        &self,
        a: &CsrMatrix,
        solver: &dyn IterativeSolver,
        tol: &OnlineTolerances,
    ) -> bool {
        !solver.verify_state(a, self.norm1_a, tol).detected
    }
}

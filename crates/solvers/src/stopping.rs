//! Stopping criteria for the iterative solvers.

use ftcg_sparse::CsrMatrix;

/// When to declare convergence on the residual norm `‖rᵢ‖₂`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StoppingCriterion {
    /// The paper's Algorithm 1, line 4: stop when
    /// `‖rᵢ‖ ≤ ε·(‖A‖·‖r₀‖ + ‖b‖)` (we use `‖A‖₁` for `‖A‖`).
    Paper {
        /// The tolerance `ε`.
        eps: f64,
    },
    /// Standard relative criterion `‖rᵢ‖ ≤ ε·‖b‖`.
    RelativeB {
        /// The tolerance `ε`.
        eps: f64,
    },
    /// Absolute criterion `‖rᵢ‖ ≤ ε`.
    Absolute {
        /// The threshold.
        eps: f64,
    },
}

impl StoppingCriterion {
    /// Resolves the criterion into a fixed threshold on `‖r‖₂` for a
    /// given system (evaluated once, in reliable mode).
    pub fn threshold(&self, a: &CsrMatrix, b_norm: f64, r0_norm: f64) -> f64 {
        match *self {
            StoppingCriterion::Paper { eps } => eps * (a.norm1() * r0_norm + b_norm),
            StoppingCriterion::RelativeB { eps } => eps * b_norm,
            StoppingCriterion::Absolute { eps } => eps,
        }
    }

    /// Reasonable default: relative 1e-8.
    pub fn default_relative() -> Self {
        StoppingCriterion::RelativeB { eps: 1e-8 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcg_sparse::gen;

    #[test]
    fn paper_threshold_formula() {
        let a = gen::tridiagonal(5, 4.0, -1.0).unwrap();
        let c = StoppingCriterion::Paper { eps: 1e-6 };
        let t = c.threshold(&a, 2.0, 3.0);
        assert!((t - 1e-6 * (a.norm1() * 3.0 + 2.0)).abs() < 1e-18);
    }

    #[test]
    fn relative_ignores_matrix() {
        let a = gen::tridiagonal(5, 4.0, -1.0).unwrap();
        let c = StoppingCriterion::RelativeB { eps: 1e-4 };
        assert_eq!(c.threshold(&a, 10.0, 99.0), 1e-3);
    }

    #[test]
    fn absolute_is_constant() {
        let a = gen::tridiagonal(5, 4.0, -1.0).unwrap();
        let c = StoppingCriterion::Absolute { eps: 0.5 };
        assert_eq!(c.threshold(&a, 10.0, 99.0), 0.5);
    }
}

//! Chen's stability tests for ONLINE-DETECTION (Section 3.1).
//!
//! The verification run every `d` iterations consists of:
//!
//! * an **orthogonality check** on `p_{i+1}` and `q = A·pᵢ`, computing
//!   `pᵀ_{i+1}q / (‖p_{i+1}‖·‖q‖)` — cheap (two norms and a dot);
//! * a **residual check** recomputing `b − A·xᵢ` and comparing it to the
//!   recursive residual `rᵢ` — the dominant cost, one extra SpMxV.
//!
//! Thresholds are relative to machine precision scaled by the problem
//! size; fault-free CG keeps both quantities many orders of magnitude
//! below them (no false positives), while bit flips that matter push
//! them far above (tested below and in `ftcg-sim`).

use ftcg_abft::spmv::spmv_defensive;
use ftcg_sparse::{vector, CsrMatrix};

/// Thresholds for the two stability tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineTolerances {
    /// Bound on `|pᵀq|/(‖p‖‖q‖)` (A-conjugacy drift).
    pub orthogonality: f64,
    /// Bound on `‖(b − Ax) − r‖ / (‖A‖₁‖x‖∞ + ‖b‖∞)` (residual drift).
    pub residual: f64,
}

impl Default for OnlineTolerances {
    fn default() -> Self {
        Self {
            orthogonality: 1e-8,
            residual: 1e-10,
        }
    }
}

/// Result of one online verification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineVerdict {
    /// Measured orthogonality ratio.
    pub orthogonality: f64,
    /// Measured scaled residual drift.
    pub residual_drift: f64,
    /// `true` iff at least one test tripped.
    pub detected: bool,
}

/// The shared residual test: recomputes `b − A·x` defensively and
/// returns the scaled drift against the recursive residual `r` (the
/// dominant `Tverif` cost in both verification variants).
fn residual_drift(a: &CsrMatrix, b: &[f64], x: &[f64], r: &[f64], norm1_a: f64) -> f64 {
    let n = a.n_rows();
    let mut true_r = vec![0.0; n];
    spmv_defensive(a, x, &mut true_r);
    for i in 0..n {
        true_r[i] = b[i] - true_r[i];
    }
    let drift = vector::max_abs_diff(&true_r, r);
    let scale = norm1_a * vector::norm_inf(x) + vector::norm_inf(b);
    if scale > 0.0 {
        drift / scale
    } else {
        drift
    }
}

/// Runs both stability tests. `p_next` is the search direction *after*
/// the update (which should be A-conjugate to the previous one), `q` the
/// last SpMxV output. The residual check recomputes `b − A·x` (the
/// dominant cost the model charges as `Tverif`).
/// `norm1_a` must be the 1-norm of the *clean* matrix, computed once at
/// setup: the working matrix may be corrupted (wild column indices), so
/// recomputing the norm here would be both unsafe and meaningless.
#[allow(clippy::too_many_arguments)]
pub fn verify_online(
    a: &CsrMatrix,
    b: &[f64],
    x: &[f64],
    r: &[f64],
    p_next: &[f64],
    q: &[f64],
    norm1_a: f64,
    tol: &OnlineTolerances,
) -> OnlineVerdict {
    let n = a.n_rows();
    assert_eq!(x.len(), n);
    assert_eq!(r.len(), n);

    // Orthogonality: p_{i+1} ⟂ q (A-conjugacy of successive directions).
    let pq = vector::dot(p_next, q);
    let denom = vector::norm2(p_next) * vector::norm2(q);
    let orthogonality = if denom > 0.0 { (pq / denom).abs() } else { 0.0 };

    // Residual: recompute b − A·x defensively and compare to r.
    let residual_drift = residual_drift(a, b, x, r, norm1_a);

    // `f64::max` ignores NaN operands, so non-finite corruption must be
    // screened explicitly (a flipped exponent bit easily produces Inf/NaN).
    let any_nonfinite = x
        .iter()
        .chain(r.iter())
        .chain(p_next.iter())
        .chain(q.iter())
        .any(|v| !v.is_finite());
    let detected = any_nonfinite
        || !orthogonality.is_finite()
        || !residual_drift.is_finite()
        || orthogonality > tol.orthogonality
        || residual_drift > tol.residual;
    OnlineVerdict {
        orthogonality,
        residual_drift,
        detected,
    }
}

/// The residual-only variant of [`verify_online`] for solvers whose
/// successive directions are *not* A-conjugate (BiCGStab, CGNE): the
/// orthogonality test would false-positive forever, so only the
/// recomputed-residual drift and the non-finite screen run. `extra`
/// lists further solver vectors (directions, product outputs) that the
/// non-finite screen must cover.
pub fn verify_online_residual(
    a: &CsrMatrix,
    b: &[f64],
    x: &[f64],
    r: &[f64],
    extra: &[&[f64]],
    norm1_a: f64,
    tol: &OnlineTolerances,
) -> OnlineVerdict {
    assert_eq!(x.len(), a.n_rows());
    assert_eq!(r.len(), a.n_rows());

    let residual_drift = residual_drift(a, b, x, r, norm1_a);

    let any_nonfinite = x
        .iter()
        .chain(r.iter())
        .chain(extra.iter().flat_map(|v| v.iter()))
        .any(|v| !v.is_finite());
    let detected = any_nonfinite || !residual_drift.is_finite() || residual_drift > tol.residual;
    OnlineVerdict {
        orthogonality: 0.0,
        residual_drift,
        detected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::CgConfig;
    use ftcg_sparse::gen;

    /// Runs a few clean CG iterations and returns (x, r, p, q) mid-run.
    fn clean_cg_state(
        a: &CsrMatrix,
        b: &[f64],
        iters: usize,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let n = a.n_rows();
        let mut x = vec![0.0; n];
        let mut r = b.to_vec();
        let mut p = r.clone();
        let mut q = vec![0.0; n];
        let mut rns = vector::norm2_sq(&r);
        for _ in 0..iters {
            a.spmv_into(&p, &mut q);
            let alpha = rns / vector::dot(&p, &q);
            vector::axpy(alpha, &p, &mut x);
            vector::axpy(-alpha, &q, &mut r);
            let new = vector::norm2_sq(&r);
            let beta = new / rns;
            rns = new;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
        }
        (x, r, p, q)
    }

    #[test]
    fn clean_run_passes() {
        let a = gen::random_spd(60, 0.08, 2).unwrap();
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.3).sin()).collect();
        for iters in [1usize, 3, 10, 25] {
            let (x, r, p, q) = clean_cg_state(&a, &b, iters);
            let v = verify_online(
                &a,
                &b,
                &x,
                &r,
                &p,
                &q,
                a.norm1(),
                &OnlineTolerances::default(),
            );
            assert!(!v.detected, "false positive after {iters} iters: {v:?}");
        }
    }

    #[test]
    fn detects_x_corruption() {
        let a = gen::random_spd(60, 0.08, 3).unwrap();
        let b: Vec<f64> = vec![1.0; 60];
        let (mut x, r, p, q) = clean_cg_state(&a, &b, 5);
        x[10] += 1.0;
        let v = verify_online(
            &a,
            &b,
            &x,
            &r,
            &p,
            &q,
            a.norm1(),
            &OnlineTolerances::default(),
        );
        assert!(v.detected);
        assert!(v.residual_drift > 1e-6);
    }

    #[test]
    fn detects_r_corruption() {
        let a = gen::random_spd(60, 0.08, 4).unwrap();
        let b: Vec<f64> = vec![1.0; 60];
        let (x, mut r, p, q) = clean_cg_state(&a, &b, 5);
        r[0] -= 0.5;
        let v = verify_online(
            &a,
            &b,
            &x,
            &r,
            &p,
            &q,
            a.norm1(),
            &OnlineTolerances::default(),
        );
        assert!(v.detected);
    }

    #[test]
    fn detects_matrix_corruption() {
        let a = gen::random_spd(60, 0.08, 5).unwrap();
        let b: Vec<f64> = vec![1.0; 60];
        let (x, r, p, q) = clean_cg_state(&a, &b, 5);
        let mut bad = a.clone();
        bad.val_mut()[7] += 1.0;
        // Recomputed residual uses the corrupted matrix: drift appears.
        let v = verify_online(
            &bad,
            &b,
            &x,
            &r,
            &p,
            &q,
            a.norm1(),
            &OnlineTolerances::default(),
        );
        assert!(v.detected);
    }

    #[test]
    fn detects_p_corruption_via_orthogonality() {
        let a = gen::random_spd(60, 0.08, 6).unwrap();
        let b: Vec<f64> = vec![1.0; 60];
        let (x, r, mut p, q) = clean_cg_state(&a, &b, 5);
        p[3] += 10.0; // break A-conjugacy
        let v = verify_online(
            &a,
            &b,
            &x,
            &r,
            &p,
            &q,
            a.norm1(),
            &OnlineTolerances::default(),
        );
        assert!(v.detected);
        assert!(v.orthogonality > 1e-8);
    }

    #[test]
    fn nan_always_detected() {
        let a = gen::random_spd(30, 0.1, 7).unwrap();
        let b: Vec<f64> = vec![1.0; 30];
        let (mut x, r, p, q) = clean_cg_state(&a, &b, 3);
        x[0] = f64::NAN;
        let v = verify_online(
            &a,
            &b,
            &x,
            &r,
            &p,
            &q,
            a.norm1(),
            &OnlineTolerances::default(),
        );
        assert!(v.detected);
    }

    #[test]
    fn survives_corrupt_structure() {
        let a = gen::random_spd(30, 0.1, 8).unwrap();
        let b: Vec<f64> = vec![1.0; 30];
        let (x, r, p, q) = clean_cg_state(&a, &b, 3);
        let mut bad = a.clone();
        bad.rowptr_mut()[5] = usize::MAX;
        // Must not panic; must detect.
        let v = verify_online(
            &bad,
            &b,
            &x,
            &r,
            &p,
            &q,
            a.norm1(),
            &OnlineTolerances::default(),
        );
        assert!(v.detected);
    }

    #[test]
    fn tolerances_default_sane() {
        let t = OnlineTolerances::default();
        assert!(t.orthogonality > 0.0 && t.orthogonality < 1e-4);
        assert!(t.residual > 0.0 && t.residual < 1e-6);
    }

    #[test]
    fn converged_state_passes() {
        // After full convergence the checks must still pass (q stale but
        // orthogonality ratio remains tiny relative to norms).
        let a = gen::tridiagonal(40, 4.0, -1.0).unwrap();
        let b = vec![1.0; 40];
        let s = crate::cg::cg_solve(&a, &b, &vec![0.0; 40], &CgConfig::default());
        let mut r = b.clone();
        let ax = a.spmv(&s.x);
        vector::sub_assign(&mut r, &ax);
        let (x2, r2, p2, q2) = clean_cg_state(&a, &b, 30);
        let v = verify_online(
            &a,
            &b,
            &x2,
            &r2,
            &p2,
            &q2,
            a.norm1(),
            &OnlineTolerances::default(),
        );
        assert!(!v.detected, "{v:?}");
        let _ = (s, r);
    }
}

//! Per-worker reusable solve memory: the [`SolverWorkspace`].
//!
//! A Monte-Carlo campaign executes the *same shapes* of work thousands
//! of times: one solver machine per (solver, n), one corruptible matrix
//! image per (n, nnz), one checkpoint slot, one TMR shadow pair, one
//! trusted input copy. Allocating those per repetition is pure
//! allocator traffic on the hot path; a `SolverWorkspace` retains them
//! across repetitions and re-initializes them in place:
//!
//! * solver machines are cached per `(SolverKind, n)` and reset through
//!   [`IterativeSolver::reset_zero`] — bit-identical to a fresh
//!   [`SolverKind::start_zero`];
//! * corruptible matrix images come from a per-`(n, nnz)`
//!   [`CsrImagePool`], restored by `copy_from_slice` instead of cloned;
//! * checkpoints live in a double-buffered
//!   [`SnapshotSlot`](ftcg_checkpoint::SnapshotSlot), the pristine
//!   initial state in a retained [`SolverState`], the ABFT shadows in
//!   retained [`TmrVector`]s and [`XRef`]s.
//!
//! ## Reuse contract (why bit-exactness holds)
//!
//! Every reset path is `copy_from_slice`/`fill` plus *exactly* the
//! floating-point operations the corresponding constructor performs, in
//! the same order — no data-dependent branching, no reordered sums. A
//! solve through a reused workspace therefore produces bit-for-bit the
//! `SolveStats`/`ResilientOutcome` of a fresh-allocation solve; the
//! property suite (`snapshot_proptests.rs`) and the allocation gate
//! (`alloc_gate.rs`) pin both halves of the contract.
//!
//! The workspace is deliberately `!Sync`: each worker owns one (see
//! `ftcg-engine`'s `JobWorkspace`), so no locking ever touches the hot
//! path.
//!
//! ## Retention and scope
//!
//! Buffers are retained for the workspace's lifetime with no eviction:
//! peak memory grows with the number of *distinct shape classes* the
//! worker sees (a campaign grid holds a handful — the Table 1 suite has
//! nine), roughly four matrix images per `(n, nnz)` class (the pooled
//! image, the initial state and the two checkpoint buffers). Drop the
//! workspace — or scope one per campaign, as the engine pool does — to
//! release everything. One reuse boundary is deliberate: non-CSR kernel
//! backends (`bcsr`, `sell`) still re-materialize their converted
//! format defensively from the live image inside each solve, because a
//! conversion cached across repetitions could be stale with respect to
//! injected matrix faults; pooling those conversion buffers would need
//! `convert_into`-style APIs on the formats and is future work.

use ftcg_abft::tmr::TmrVector;
use ftcg_abft::XRef;
use ftcg_checkpoint::{SnapshotSlot, SolverState};
use ftcg_fault::FaultEvent;
use ftcg_sparse::{CsrImagePool, CsrMatrix};

use crate::machine::{IterativeSolver, SolverKind};

/// Retained executor-side buffers for one `(n, nnz)` shape class: the
/// pristine initial state, the rolling checkpoint slot, the trusted
/// input copies and the TMR shadows.
#[derive(Debug)]
pub(crate) struct ExecArena {
    /// Pristine initial state (the paper's "read initial data again"
    /// escalation target).
    pub(crate) initial: SolverState,
    /// Rolling verified checkpoint (double-buffered, allocation-free).
    pub(crate) slot: SnapshotSlot,
    /// Trusted copy of the direction vector, re-captured per iteration.
    pub(crate) xref: XRef,
    /// Trusted copy for mid-step products (BiCGStab's second product
    /// captures its reference at call time).
    pub(crate) xref_scratch: XRef,
    /// TMR shadow of the residual (ABFT schemes).
    pub(crate) r_tmr: TmrVector,
    /// TMR shadow of the iterate (ABFT schemes).
    pub(crate) x_tmr: TmrVector,
    /// Product-output faults deferred onto the verified product.
    pub(crate) q_faults: Vec<FaultEvent>,
}

impl ExecArena {
    fn new() -> Self {
        ExecArena {
            initial: SolverState::empty(),
            slot: SnapshotSlot::new(),
            xref: XRef::empty(),
            xref_scratch: XRef::empty(),
            r_tmr: TmrVector::zeros(0),
            x_tmr: TmrVector::zeros(0),
            q_faults: Vec::new(),
        }
    }
}

/// Reusable per-worker solve memory (see the module docs). Create one
/// per worker thread and pass it to
/// [`solve_resilient_in`](crate::resilient::solve_resilient_in) for
/// every repetition it executes.
#[derive(Default)]
pub struct SolverWorkspace {
    machines: Vec<((SolverKind, usize), Box<dyn IterativeSolver>)>,
    images: CsrImagePool,
    arenas: Vec<((usize, usize), ExecArena)>,
}

impl std::fmt::Debug for SolverWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverWorkspace")
            .field(
                "machines",
                &self
                    .machines
                    .iter()
                    .map(|((k, n), _)| (*k, *n))
                    .collect::<Vec<_>>(),
            )
            .field("pooled_images", &self.images.len())
            .field("arenas", &self.arenas.len())
            .finish()
    }
}

impl SolverWorkspace {
    /// An empty workspace; buffers are retained as shapes are seen.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of retained solver machines (distinct `(solver, n)`).
    pub fn retained_machines(&self) -> usize {
        self.machines.len()
    }

    /// Number of pooled matrix-image shape classes (distinct `(n, nnz)`).
    pub fn pooled_images(&self) -> usize {
        self.images.len()
    }

    /// Checks out everything one resilient solve needs: a machine reset
    /// to the zero-start state over `(a0, b)` (bit-identical to a fresh
    /// [`SolverKind::start_zero`]), a corruptible image holding a
    /// bit-exact copy of `a0`, and the retained executor arena for this
    /// shape class.
    pub(crate) fn checkout(
        &mut self,
        kind: SolverKind,
        a0: &CsrMatrix,
        b: &[f64],
    ) -> (&mut dyn IterativeSolver, &mut CsrMatrix, &mut ExecArena) {
        let mkey = (kind, a0.n_rows());
        let mi = match self.machines.iter().position(|(k, _)| *k == mkey) {
            Some(i) => {
                self.machines[i].1.reset_zero(a0, b);
                i
            }
            None => {
                self.machines.push((mkey, kind.start_zero(a0, b)));
                self.machines.len() - 1
            }
        };
        let akey = (a0.n_rows(), a0.nnz());
        let ai = match self.arenas.iter().position(|(k, _)| *k == akey) {
            Some(i) => i,
            None => {
                self.arenas.push((akey, ExecArena::new()));
                self.arenas.len() - 1
            }
        };
        (
            self.machines[mi].1.as_mut(),
            self.images.checkout(a0),
            &mut self.arenas[ai].1,
        )
    }
}

/// Retained memory for a *batched* resilient solve: one
/// [`SolverWorkspace`] per lane plus the shared multi-RHS blocks the
/// fused traversal packs directions into.
///
/// Like the per-lane workspace, everything is retained at its
/// high-water mark: re-running a batch of the same shape (or any
/// smaller one) performs no steady-state allocation — pinned by claim 4
/// of the allocation gate (`tests/alloc_gate.rs`).
#[derive(Default)]
pub struct BatchWorkspace {
    pub(crate) lanes: Vec<SolverWorkspace>,
    /// Packed direction columns for the fused product (`n × fused`).
    pub(crate) xblock: ftcg_sparse::MultiVec,
    /// Fused product outputs, one column per fused lane.
    pub(crate) yblock: ftcg_sparse::MultiVec,
    /// Lane indices iterating this round (retained index scratch).
    pub(crate) live: Vec<usize>,
    /// Lane indices served by the fused traversal this round.
    pub(crate) fused: Vec<usize>,
    /// Per-fused-column output probes from the fused traversal
    /// (retained scratch, `fused.len()` entries in use).
    pub(crate) probes: Vec<[f64; 2]>,
}

impl std::fmt::Debug for BatchWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchWorkspace")
            .field("lanes", &self.lanes.len())
            .finish()
    }
}

impl BatchWorkspace {
    /// An empty batch workspace; lane workspaces and blocks grow to the
    /// high-water mark of the batches run through it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of retained lane workspaces.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Grows the lane list to at least `k` workspaces.
    pub(crate) fn ensure_lanes(&mut self, k: usize) {
        if self.lanes.len() < k {
            self.lanes.resize_with(k, SolverWorkspace::new);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::CanonVec;
    use ftcg_sparse::gen;

    #[test]
    fn checkout_resets_bit_identically_to_start_zero() {
        let a = gen::random_spd(40, 0.08, 11).unwrap();
        let b: Vec<f64> = (0..40).map(|i| 1.0 + (i as f64 * 0.3).sin()).collect();
        let b2: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut ws = SolverWorkspace::new();
        for kind in SolverKind::ALL {
            // Dirty the retained machine with a different rhs first.
            ws.checkout(kind, &a, &b2);
            let (m, image, _) = ws.checkout(kind, &a, &b);
            let fresh = kind.start_zero(&a, &b);
            for which in [
                CanonVec::Iterate,
                CanonVec::Residual,
                CanonVec::Direction,
                CanonVec::Product,
            ] {
                let got = m.vector(which);
                let want = fresh.vector(which);
                assert_eq!(got.len(), want.len());
                for i in 0..got.len() {
                    assert_eq!(
                        got[i].to_bits(),
                        want[i].to_bits(),
                        "{kind}: {which:?}[{i}] differs after reset"
                    );
                }
            }
            assert_eq!(
                m.residual_norm().to_bits(),
                fresh.residual_norm().to_bits(),
                "{kind}: residual norm differs after reset"
            );
            assert_eq!(*image, a);
        }
        assert_eq!(ws.retained_machines(), 4);
        assert_eq!(ws.pooled_images(), 1);
    }

    #[test]
    fn machines_are_retained_per_kind_and_size() {
        let a1 = gen::tridiagonal(20, 4.0, -1.0).unwrap();
        let a2 = gen::tridiagonal(30, 4.0, -1.0).unwrap();
        let b1 = vec![1.0; 20];
        let b2 = vec![1.0; 30];
        let mut ws = SolverWorkspace::new();
        ws.checkout(SolverKind::Cg, &a1, &b1);
        ws.checkout(SolverKind::Cg, &a1, &b1);
        ws.checkout(SolverKind::Cg, &a2, &b2);
        ws.checkout(SolverKind::Pcg, &a1, &b1);
        assert_eq!(ws.retained_machines(), 3); // (cg,20), (cg,30), (pcg,20)
        assert_eq!(ws.pooled_images(), 2); // two (n, nnz) classes
    }
}

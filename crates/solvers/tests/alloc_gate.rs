//! The allocation gate: a counting global allocator proving the
//! zero-allocation claims of the workspace pipeline.
//!
//! Three claims are pinned:
//!
//! 1. a plain CG machine step allocates nothing — the machine owns all
//!    its vectors and every kernel writes into caller buffers;
//! 2. a *steady-state* resilient CG iteration (no fault, no rollback;
//!    checkpoints included — they copy into retained slot buffers)
//!    allocates nothing: two fault-free solves on a warm workspace that
//!    differ only in their iteration budget (10 vs 60 productive
//!    iterations, checkpoints taken throughout) must perform exactly
//!    the same number of allocations;
//! 3. recording telemetry through a pre-allocated `ActiveRecorder`
//!    (phase timers, histograms, the bounded event ring) adds *zero*
//!    allocations to the warm solve — the `Recorder` contract's
//!    no-allocation-after-construction clause, enforced;
//! 4. a steady-state *batched* iteration is allocation-free too: k
//!    lanes advancing in lockstep through the fused multi-RHS
//!    traversal draw every buffer (lane arenas, the packed x/y blocks,
//!    the live/fused lane lists, the per-lane probes) from a warm
//!    `BatchWorkspace`, so the iteration budget must not change the
//!    batched allocation count;
//! 5. the fused one-pass BLAS-1 steps of *every* machine (CG's
//!    `axpy2_norm2_sq`, PCG's `axpy2_precond_dot`/`xpay_norm2_sq`,
//!    BiCGStab's fused half-step and direction updates, CGNE's fused
//!    tail) allocate nothing — the fusion rewrites may not introduce
//!    temporaries;
//! 6. the fused product-with-probe verification path (hardened kernel
//!    computes the `[Σyᵢ, Σ(i+1)yᵢ]` probe in-pass, `verify_probed`
//!    consumes it) is allocation-free at steady state for both ABFT
//!    schemes — claim 2 pins the detection scheme, and a correction
//!    (`ProtectedSpmv::verify_probed`) solve must likewise show an
//!    iteration-count-invariant allocation count on a warm workspace.
//!
//! The file holds a single `#[test]` on purpose: the counter is
//! process-global, and sibling tests running on other threads would
//! pollute the counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use ftcg_kernels::KernelSpec;
use ftcg_model::Scheme;
use ftcg_solvers::machine::{PlainContext, SolverKind, StepResult};
use ftcg_solvers::resilient::{solve_resilient_in, solve_resilient_recorded, ResilientConfig};
use ftcg_solvers::{solve_resilient_batch, BatchWorkspace, SolverWorkspace, StoppingCriterion};
use ftcg_sparse::gen;
use ftcg_telemetry::ActiveRecorder;

/// Counts heap allocations (alloc + realloc) while enabled.
struct CountingAlloc;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting on; returns the number of
/// allocations it performed.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (usize, R) {
    ALLOCS.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
    let out = f();
    ENABLED.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), out)
}

#[test]
fn steady_state_cg_iterations_allocate_nothing() {
    let a = gen::random_spd(120, 0.05, 9).unwrap();
    let n = a.n_rows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.23).sin()).collect();

    // Claim 1: the bare machine loop is allocation-free.
    let prepared = KernelSpec::Csr.prepare(&a).unwrap();
    let mut ctx = PlainContext {
        a: &a,
        kernel: prepared.as_ref(),
    };
    let mut machine = SolverKind::Cg.start_zero(&a, &b);
    machine.set_threshold(0.0); // run to the step budget
    for _ in 0..3 {
        assert_eq!(machine.step(&mut ctx), StepResult::Done); // warm-up
    }
    let (steps_allocs, _) = count_allocs(|| {
        for _ in 0..50 {
            assert_eq!(machine.step(&mut ctx), StepResult::Done);
        }
    });
    assert_eq!(
        steps_allocs, 0,
        "a plain CG machine step must not touch the allocator"
    );

    // Claim 2: steady-state executor iterations (checkpoints included)
    // are allocation-free — iteration count must not change the solve's
    // allocation count on a warm workspace.
    let cfg_for = |iters: usize| {
        let mut cfg = ResilientConfig::new(Scheme::AbftDetection, 2);
        // Never converges: every run exhausts exactly its budget.
        cfg.stopping = StoppingCriterion::Absolute { eps: 0.0 };
        cfg.max_productive_iters = iters;
        cfg.max_executed_iters = 10 * iters;
        cfg
    };
    let mut ws = SolverWorkspace::new();
    // Warm the workspace: first solve sizes every retained buffer.
    let warmup = solve_resilient_in(&a, &b, &cfg_for(60), None, &mut ws);
    assert_eq!(warmup.executed_iterations, 60);
    assert!(warmup.checkpoints > 0, "gate must cover checkpoint copies");

    let (short_allocs, short) =
        count_allocs(|| solve_resilient_in(&a, &b, &cfg_for(10), None, &mut ws));
    let (long_allocs, long) =
        count_allocs(|| solve_resilient_in(&a, &b, &cfg_for(60), None, &mut ws));
    assert_eq!(short.executed_iterations, 10);
    assert_eq!(long.executed_iterations, 60);
    assert!(long.checkpoints > short.checkpoints);
    assert_eq!(
        long_allocs,
        short_allocs,
        "50 extra steady-state iterations (with {} extra checkpoints) must \
         allocate nothing: {} allocs at 10 iters vs {} at 60",
        long.checkpoints - short.checkpoints,
        short_allocs,
        long_allocs
    );

    // Sanity: the warm path allocates strictly less than a cold one.
    let (cold_allocs, _) = count_allocs(|| {
        let mut fresh = SolverWorkspace::new();
        solve_resilient_in(&a, &b, &cfg_for(60), None, &mut fresh)
    });
    assert!(
        long_allocs < cold_allocs,
        "warm workspace ({long_allocs} allocs) must beat cold ({cold_allocs})"
    );

    // Claim 3: telemetry does not re-open the allocator. An active
    // recorder is pre-allocated at construction (counter arrays, fixed
    // histograms, bounded event ring); recording phases and events
    // through a whole resilient solve must leave the allocation count
    // exactly where the un-instrumented warm solve put it.
    let mut rec = ActiveRecorder::new();
    let warm_traced = solve_resilient_recorded(&a, &b, &cfg_for(60), None, &mut ws, &mut rec);
    assert_eq!(warm_traced.executed_iterations, 60);
    rec.reset();
    let (recorded_allocs, recorded) =
        count_allocs(|| solve_resilient_recorded(&a, &b, &cfg_for(60), None, &mut ws, &mut rec));
    assert_eq!(recorded.executed_iterations, 60);
    assert!(
        recorded.checkpoints > 0,
        "recorded gate must cover checkpoint events"
    );
    assert!(
        rec.dropped() == 0 && !rec.histogram(ftcg_telemetry::Phase::Step).is_empty(),
        "recorder must actually have recorded"
    );
    assert_eq!(
        recorded_allocs, long_allocs,
        "an active recorder must not add a single allocation to the warm \
         solve: {long_allocs} allocs un-instrumented vs {recorded_allocs} recorded"
    );

    // Claim 4: steady-state batched iterations are allocation-free. The
    // fault-free lanes all stay fusable, so the 50 extra lockstep
    // rounds run through the packed multi-RHS traversal — the exact
    // path the batched campaign spends its time on.
    let mut no_faults: Vec<Option<ftcg_fault::Injector>> = (0..4).map(|_| None).collect();
    let mut bws = BatchWorkspace::new();
    // Warm the batch arena: first call sizes every lane and block.
    let warm_batch = solve_resilient_batch(&a, &b, &cfg_for(60), &mut no_faults, &mut bws);
    assert!(warm_batch.iter().all(|o| o.executed_iterations == 60));
    let (bshort_allocs, bshort) =
        count_allocs(|| solve_resilient_batch(&a, &b, &cfg_for(10), &mut no_faults, &mut bws));
    let (blong_allocs, blong) =
        count_allocs(|| solve_resilient_batch(&a, &b, &cfg_for(60), &mut no_faults, &mut bws));
    assert!(bshort.iter().all(|o| o.executed_iterations == 10));
    assert!(blong.iter().all(|o| o.executed_iterations == 60));
    assert!(blong.iter().all(|o| o.checkpoints > bshort[0].checkpoints));
    assert_eq!(
        blong_allocs, bshort_allocs,
        "50 extra steady-state batched iterations across 4 lanes must \
         allocate nothing: {bshort_allocs} allocs at 10 iters vs \
         {blong_allocs} at 60"
    );

    // Claim 5: every machine's fused one-pass step is allocation-free,
    // not just CG's (claim 1). Each kind gets a short warm-up, then a
    // counted run; BiCGStab past convergence may legitimately hit a
    // breakdown exit, so the gate requires a minimum of productive
    // steps rather than a fixed count.
    for kind in SolverKind::ALL {
        let mut m = kind.start_zero(&a, &b);
        m.set_threshold(0.0);
        for _ in 0..3 {
            assert_eq!(
                m.step(&mut ctx),
                StepResult::Done,
                "{} warm-up",
                kind.label()
            );
        }
        let (kind_allocs, executed) = count_allocs(|| {
            let mut done = 0usize;
            for _ in 0..30 {
                let r = m.step(&mut ctx);
                assert_ne!(r, StepResult::Rejected, "{}", kind.label());
                if r != StepResult::Done {
                    break;
                }
                done += 1;
            }
            done
        });
        assert!(
            executed >= 10,
            "{}: gate needs steady-state steps, got {executed}",
            kind.label()
        );
        assert_eq!(
            kind_allocs,
            0,
            "a fused {} machine step must not touch the allocator",
            kind.label()
        );
    }

    // Claim 6: the correction scheme's fused-probe verification
    // (`ProtectedSpmv::verify_probed` fed by the kernel's in-pass
    // probe) is steady-state allocation-free, same 10-vs-60 technique
    // as claim 2.
    let corr_for = |iters: usize| {
        let mut cfg = ResilientConfig::new(Scheme::AbftCorrection, 2);
        cfg.stopping = StoppingCriterion::Absolute { eps: 0.0 };
        cfg.max_productive_iters = iters;
        cfg.max_executed_iters = 10 * iters;
        cfg
    };
    let warm_corr = solve_resilient_in(&a, &b, &corr_for(60), None, &mut ws);
    assert_eq!(warm_corr.executed_iterations, 60);
    let (cshort_allocs, cshort) =
        count_allocs(|| solve_resilient_in(&a, &b, &corr_for(10), None, &mut ws));
    let (clong_allocs, clong) =
        count_allocs(|| solve_resilient_in(&a, &b, &corr_for(60), None, &mut ws));
    assert_eq!(cshort.executed_iterations, 10);
    assert_eq!(clong.executed_iterations, 60);
    assert_eq!(
        clong_allocs, cshort_allocs,
        "50 extra probe-verified correction iterations must allocate \
         nothing: {cshort_allocs} allocs at 10 iters vs {clong_allocs} at 60"
    );
}

//! Property tests for the batched lockstep driver: advancing k
//! repetitions of one configuration through [`solve_resilient_batch`]
//! — one shared corruptible matrix image per lane, fused multi-RHS
//! products whenever lanes are fusable — must produce outcomes
//! **bit-identical** to k independent sequential solves, for every
//! solver × scheme × kernel combination, under real fault injection.
//!
//! This is the determinism bar the engine's batched campaign stands
//! on: if a lane's injected fault, detection, rollback or escalation
//! ever leaked into a sibling lane, or the fused traversal reassociated
//! a single column's accumulation, these properties would catch it at
//! the first diverging bit.

use ftcg_fault::Injector;
use ftcg_kernels::KernelSpec;
use ftcg_model::Scheme;
use ftcg_solvers::machine::SolverKind;
use ftcg_solvers::resilient::{solve_resilient_in, ResilientConfig};
use ftcg_solvers::{solve_resilient_batch, BatchWorkspace, ResilientOutcome, SolverWorkspace};
use ftcg_sparse::{gen, CsrMatrix};
use proptest::prelude::*;

fn system(n: usize, density_mil: usize, seed: u64) -> (CsrMatrix, Vec<f64>) {
    let a = gen::random_spd(n, density_mil as f64 / 1000.0, seed).unwrap();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.29).sin()).collect();
    (a, b)
}

/// The paper-model injector (matrix arrays + the four vectors), so the
/// batched property runs under the same fault streams the campaigns
/// draw.
fn injector_for(a: &CsrMatrix, alpha: f64, seed: u64) -> Injector {
    use ftcg_fault::{target::MemoryLayout, BitRange, FaultRate, InjectorConfig};
    let layout = MemoryLayout::with_vectors(a.nnz(), a.n_rows());
    let cfg = InjectorConfig {
        rate: FaultRate::from_alpha(alpha, layout.total_words()),
        value_bits: BitRange::Full,
        index_bits: BitRange::for_index_bound(a.n_cols().max(a.nnz() + 1)),
        include_vectors: true,
    };
    Injector::for_matrix(cfg, a, seed)
}

/// Asserts a batched lane's outcome agrees with its sequential twin bit
/// for bit, counters included.
fn assert_lane_bitexact(label: &str, seq: &ResilientOutcome, bat: &ResilientOutcome) {
    assert_eq!(seq.converged, bat.converged, "{label}: converged");
    assert_eq!(
        seq.productive_iterations, bat.productive_iterations,
        "{label}: productive"
    );
    assert_eq!(
        seq.executed_iterations, bat.executed_iterations,
        "{label}: executed"
    );
    assert_eq!(
        seq.simulated_time.to_bits(),
        bat.simulated_time.to_bits(),
        "{label}: simulated time"
    );
    assert_eq!(seq.checkpoints, bat.checkpoints, "{label}: checkpoints");
    assert_eq!(seq.rollbacks, bat.rollbacks, "{label}: rollbacks");
    assert_eq!(
        seq.forward_corrections, bat.forward_corrections,
        "{label}: forward corrections"
    );
    assert_eq!(
        seq.tmr_corrections, bat.tmr_corrections,
        "{label}: tmr corrections"
    );
    assert_eq!(seq.detections, bat.detections, "{label}: detections");
    assert_eq!(
        seq.true_residual.to_bits(),
        bat.true_residual.to_bits(),
        "{label}: true residual"
    );
    assert_eq!(seq.x.len(), bat.x.len(), "{label}: x length");
    for i in 0..seq.x.len() {
        assert_eq!(
            seq.x[i].to_bits(),
            bat.x[i].to_bits(),
            "{label}: x[{i}] diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Batched == sequential, bit for bit, across the full grid under
    /// fault injection. Both arenas are deliberately dirty: one
    /// `BatchWorkspace` and one `SolverWorkspace` serve every
    /// combination in sequence, so lane checkout reset is exercised
    /// across changing (solver, scheme, kernel) shapes too.
    #[test]
    fn batched_lanes_are_bitexact_to_sequential_solves(
        n in 30usize..70,
        density_mil in 40usize..90,
        seed in 0u64..300,
        s in 2usize..8,
        k in 2usize..5,
    ) {
        const ALPHA: f64 = 1.0 / 16.0;
        let (a, b) = system(n, density_mil, seed);
        let mut sws = SolverWorkspace::new();
        let mut bws = BatchWorkspace::new();
        for scheme in [Scheme::AbftDetection, Scheme::AbftCorrection, Scheme::OnlineDetection] {
            for kind in SolverKind::ALL {
                for kernel in ["csr", "sell:8:32", "bcsr:2"] {
                    let mut cfg = ResilientConfig::new(scheme, s);
                    cfg.solver = kind;
                    cfg.kernel = KernelSpec::parse(kernel).unwrap();
                    cfg.max_productive_iters = 30;
                    cfg.max_executed_iters = 300;
                    let lane_seed = |lane: usize| seed ^ 0x5eed ^ ((lane as u64) << 32);
                    let sequential: Vec<ResilientOutcome> = (0..k)
                        .map(|lane| {
                            let mut inj = injector_for(&a, ALPHA, lane_seed(lane));
                            solve_resilient_in(&a, &b, &cfg, Some(&mut inj), &mut sws)
                        })
                        .collect();
                    let mut injectors: Vec<Option<Injector>> = (0..k)
                        .map(|lane| Some(injector_for(&a, ALPHA, lane_seed(lane))))
                        .collect();
                    let batched = solve_resilient_batch(&a, &b, &cfg, &mut injectors, &mut bws);
                    prop_assert_eq!(batched.len(), k);
                    for (lane, (seq, bat)) in sequential.iter().zip(&batched).enumerate() {
                        assert_lane_bitexact(
                            &format!("{scheme:?} × {kind} × {kernel}, lane {lane}/{k}"),
                            seq,
                            bat,
                        );
                    }
                }
            }
        }
    }
}

/// Deterministic fault-free spot-check on a structured matrix: with no
/// faults every lane converges identically, and a batch of identical
/// lanes must reproduce the single-solve trajectory exactly.
#[test]
fn fault_free_batch_matches_single_solve() {
    let a = gen::poisson2d(9).unwrap();
    let n = a.n_rows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.17).cos()).collect();
    let cfg = ResilientConfig::new(Scheme::AbftCorrection, 6);
    let single = solve_resilient_in(&a, &b, &cfg, None, &mut SolverWorkspace::new());
    let mut injectors: Vec<Option<Injector>> = (0..3).map(|_| None).collect();
    let batched = solve_resilient_batch(&a, &b, &cfg, &mut injectors, &mut BatchWorkspace::new());
    for (lane, out) in batched.iter().enumerate() {
        assert_lane_bitexact(&format!("fault-free lane {lane}"), &single, out);
    }
}

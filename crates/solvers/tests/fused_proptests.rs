//! Property tests for the fused hot-path sweeps.
//!
//! Two layers of the bit-exactness contract from
//! `ftcg_sparse::fused` are pinned here:
//!
//! 1. **Op level** — every fused one-pass kernel produces exactly the
//!    bits of the separate `vector::` sweeps it replaces, on generated
//!    vectors that include the awkward corners (`±0.0`, `NaN`, `±∞`,
//!    subnormal-scale and huge magnitudes). The in-crate unit tests
//!    check hand-picked vectors; these properties search the space.
//! 2. **Solve level** — per solver × scheme × kernel under real fault
//!    injection (mirroring `batch_proptests.rs`), a resilient solve
//!    through the fused machines, the probe-carrying product, and the
//!    probed verifiers is bit-reproducible: an identical injector seed
//!    on a dirty, previously-used workspace replays the exact outcome
//!    of a fresh-workspace solve, counters and iterate included. If a
//!    fused sweep ever read stale state, depended on buffer history, or
//!    the probe path diverged from the plain checksum sweeps, the
//!    replay would split at the first differing bit.

use ftcg_fault::Injector;
use ftcg_kernels::KernelSpec;
use ftcg_model::Scheme;
use ftcg_solvers::machine::SolverKind;
use ftcg_solvers::resilient::{solve_resilient_in, ResilientConfig};
use ftcg_solvers::{ResilientOutcome, SolverWorkspace};
use ftcg_sparse::{fused, gen, vector, CsrMatrix};
use proptest::prelude::*;

/// Generated element: mostly finite sign-mixed values across many
/// binades, salted with the IEEE-754 corner cases.
fn element() -> impl Strategy<Value = f64> {
    (0u8..14, -1.0e3f64..1.0e3).prop_map(|(tag, v)| match tag {
        0..=7 => v,
        8 | 9 => v * 1.0e-303, // subnormal scale
        10 => 0.0,
        11 => -0.0,
        12 => f64::NAN,
        _ => {
            if v < 0.0 {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }
        }
    })
}

fn vecs(k: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (0usize..64).prop_flat_map(move |n| {
        proptest::collection::vec(proptest::collection::vec(element(), n), k)
    })
}

fn scalar() -> impl Strategy<Value = f64> {
    (0u8..8, -4.0f64..4.0).prop_map(|(tag, v)| match tag {
        0..=5 => v,
        6 => 0.0,
        _ => -0.0,
    })
}

/// Bit equality, except any NaN matches any NaN: Rust does not fix
/// which NaN bit pattern an invalid operation produces (a const-folded
/// `∞ + (−∞)` and the executed `addsd` can disagree on the sign bit),
/// so the fused contract's bit-identity only covers non-NaN results.
fn bits_eq(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a.to_bits() == b.to_bits()
}

fn assert_bits(a: f64, b: f64, what: &str) {
    assert!(bits_eq(a, b), "{what}: {a} vs {b}");
}

fn assert_bits_vec(a: &[f64], b: &[f64], what: &str) {
    for i in 0..a.len() {
        assert!(bits_eq(a[i], b[i]), "{what}[{i}]: {} vs {}", a[i], b[i]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `probe_of` reproduces the ABFT checksum chains (`.sum()` from
    /// `-0.0`, weights `1` and `i+1`) on arbitrary inputs.
    #[test]
    fn probe_matches_checksum_sweeps(v in vecs(1)) {
        let y = &v[0];
        let p = fused::probe_of(y);
        let want0: f64 = y.iter().sum();
        let want1: f64 = y.iter().enumerate().map(|(i, &v)| (i + 1) as f64 * v).sum();
        assert_bits(p[0], want0, "probe[0]");
        assert_bits(p[1], want1, "probe[1]");
    }

    /// `dot2` ≡ two separate `vector::dot` sweeps.
    #[test]
    fn dot2_matches_two_dots(v in vecs(4)) {
        let (d1, d2) = fused::dot2(&v[0], &v[1], &v[2], &v[3]);
        assert_bits(d1, vector::dot(&v[0], &v[1]), "dot2.0");
        assert_bits(d2, vector::dot(&v[2], &v[3]), "dot2.1");
    }

    /// `axpy2_norm2_sq` ≡ `axpy; axpy; norm2_sq` — the CG/CGNE tail.
    #[test]
    fn axpy2_norm2_sq_matches_separate_sweeps(
        v in vecs(4),
        a in scalar(),
        c in scalar(),
    ) {
        let (p, q) = (&v[0], &v[1]);
        let mut x = v[2].clone();
        let mut r = v[3].clone();
        let (mut x_ref, mut r_ref) = (x.clone(), r.clone());
        let got = fused::axpy2_norm2_sq(a, p, &mut x, c, q, &mut r);
        vector::axpy(a, p, &mut x_ref);
        vector::axpy(c, q, &mut r_ref);
        assert_bits_vec(&x, &x_ref, "x");
        assert_bits_vec(&r, &r_ref, "r");
        assert_bits(got, vector::norm2_sq(&r_ref), "norm2_sq");
    }

    /// `axpy2_precond_dot` ≡ `axpy; axpy; z=r∘minv; dot(r,z)` — the
    /// PCG tail.
    #[test]
    fn axpy2_precond_dot_matches_separate_sweeps(
        v in vecs(5),
        a in scalar(),
        c in scalar(),
    ) {
        let (p, q, minv) = (&v[0], &v[1], &v[2]);
        let mut x = v[3].clone();
        let mut r = v[4].clone();
        let mut z = vec![0.0; r.len()];
        let (mut x_ref, mut r_ref, mut z_ref) = (x.clone(), r.clone(), z.clone());
        let got = fused::axpy2_precond_dot(a, p, &mut x, c, q, &mut r, minv, &mut z);
        vector::axpy(a, p, &mut x_ref);
        vector::axpy(c, q, &mut r_ref);
        for i in 0..z_ref.len() {
            z_ref[i] = r_ref[i] * minv[i];
        }
        assert_bits_vec(&x, &x_ref, "x");
        assert_bits_vec(&r, &r_ref, "r");
        assert_bits_vec(&z, &z_ref, "z");
        assert_bits(got, vector::dot(&r_ref, &z_ref), "rz");
    }

    /// `xpay_norm2_sq` ≡ the `y = x + b·y` loop + `norm2_sq(v)`.
    #[test]
    fn xpay_norm2_sq_matches_separate_sweeps(v in vecs(3), b in scalar()) {
        let (x, w) = (&v[0], &v[1]);
        let mut y = v[2].clone();
        let mut y_ref = y.clone();
        let got = fused::xpay_norm2_sq(x, b, &mut y, w);
        for i in 0..y_ref.len() {
            y_ref[i] = x[i] + b * y_ref[i];
        }
        assert_bits_vec(&y, &y_ref, "y");
        assert_bits(got, vector::norm2_sq(w), "norm2_sq");
    }

    /// `sub_scaled_norm2_sq` ≡ the `s = r − a·v` loop + `norm2_sq(s)`
    /// — BiCGStab's half-step residual.
    #[test]
    fn sub_scaled_norm2_sq_matches_separate_sweeps(v in vecs(2), a in scalar()) {
        let (r, w) = (&v[0], &v[1]);
        let mut s = vec![0.0; r.len()];
        let mut s_ref = vec![0.0; r.len()];
        let got = fused::sub_scaled_norm2_sq(r, a, w, &mut s);
        for i in 0..s_ref.len() {
            s_ref[i] = r[i] - a * w[i];
        }
        assert_bits_vec(&s, &s_ref, "s");
        assert_bits(got, vector::norm2_sq(&s_ref), "norm2_sq");
    }

    /// `step_update_dot` ≡ the two BiCGStab update loops + `dot(r̂,r)`.
    #[test]
    fn step_update_dot_matches_separate_sweeps(
        v in vecs(5),
        a in scalar(),
        w in scalar(),
    ) {
        let (p, s, t, rhat) = (&v[0], &v[1], &v[2], &v[3]);
        let mut x = v[4].clone();
        let mut r = vec![0.0; x.len()];
        let (mut x_ref, mut r_ref) = (x.clone(), r.clone());
        let got = fused::step_update_dot(a, p, w, s, t, &mut x, &mut r, rhat);
        for i in 0..x_ref.len() {
            x_ref[i] += a * p[i] + w * s[i];
        }
        for i in 0..r_ref.len() {
            r_ref[i] = s[i] - w * t[i];
        }
        assert_bits_vec(&x, &x_ref, "x");
        assert_bits_vec(&r, &r_ref, "r");
        assert_bits(got, vector::dot(rhat, &r_ref), "rho");
    }

    /// `dir_update_norm2_sq` ≡ the BiCGStab direction loop +
    /// `norm2_sq(r)`.
    #[test]
    fn dir_update_norm2_sq_matches_separate_sweeps(
        v in vecs(3),
        b in scalar(),
        w in scalar(),
    ) {
        let (r, u) = (&v[0], &v[1]);
        let mut p = v[2].clone();
        let mut p_ref = p.clone();
        let got = fused::dir_update_norm2_sq(r, b, w, u, &mut p);
        for i in 0..p_ref.len() {
            p_ref[i] = r[i] + b * (p_ref[i] - w * u[i]);
        }
        assert_bits_vec(&p, &p_ref, "p");
        assert_bits(got, vector::norm2_sq(r), "norm2_sq");
    }
}

/// The paper-model injector, identical to `batch_proptests.rs`.
fn injector_for(a: &CsrMatrix, alpha: f64, seed: u64) -> Injector {
    use ftcg_fault::{target::MemoryLayout, BitRange, FaultRate, InjectorConfig};
    let layout = MemoryLayout::with_vectors(a.nnz(), a.n_rows());
    let cfg = InjectorConfig {
        rate: FaultRate::from_alpha(alpha, layout.total_words()),
        value_bits: BitRange::Full,
        index_bits: BitRange::for_index_bound(a.n_cols().max(a.nnz() + 1)),
        include_vectors: true,
    };
    Injector::for_matrix(cfg, a, seed)
}

fn assert_outcome_bitexact(label: &str, x: &ResilientOutcome, y: &ResilientOutcome) {
    assert_eq!(x.converged, y.converged, "{label}: converged");
    assert_eq!(
        x.productive_iterations, y.productive_iterations,
        "{label}: productive"
    );
    assert_eq!(
        x.executed_iterations, y.executed_iterations,
        "{label}: executed"
    );
    assert_eq!(
        x.simulated_time.to_bits(),
        y.simulated_time.to_bits(),
        "{label}: simulated time"
    );
    assert_eq!(x.checkpoints, y.checkpoints, "{label}: checkpoints");
    assert_eq!(x.rollbacks, y.rollbacks, "{label}: rollbacks");
    assert_eq!(x.detections, y.detections, "{label}: detections");
    assert_eq!(
        x.true_residual.to_bits(),
        y.true_residual.to_bits(),
        "{label}: true residual"
    );
    assert_bits_vec(&x.x, &y.x, label);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Solve-level replay: for every solver × scheme × kernel under
    /// fault injection, a second solve with an identical injector seed
    /// on the (now dirty) workspace reproduces the first outcome bit
    /// for bit — the fused sweeps, probe-carrying products and probed
    /// verifiers leave no history behind.
    #[test]
    fn fused_solves_replay_bitexact_across_the_grid(
        n in 30usize..70,
        density_mil in 40usize..90,
        seed in 0u64..300,
        s in 2usize..8,
    ) {
        const ALPHA: f64 = 1.0 / 16.0;
        let a = gen::random_spd(n, density_mil as f64 / 1000.0, seed).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.29).sin()).collect();
        let mut fresh = SolverWorkspace::new();
        let mut dirty = SolverWorkspace::new();
        for scheme in [Scheme::AbftDetection, Scheme::AbftCorrection, Scheme::OnlineDetection] {
            for kind in SolverKind::ALL {
                for kernel in ["csr", "sell:8:32", "bcsr:2"] {
                    let mut cfg = ResilientConfig::new(scheme, s);
                    cfg.solver = kind;
                    cfg.kernel = KernelSpec::parse(kernel).unwrap();
                    cfg.max_productive_iters = 30;
                    cfg.max_executed_iters = 300;
                    let mut inj = injector_for(&a, ALPHA, seed ^ 0xf00d);
                    let first = solve_resilient_in(&a, &b, &cfg, Some(&mut inj), &mut fresh);
                    let mut inj = injector_for(&a, ALPHA, seed ^ 0xf00d);
                    let replay = solve_resilient_in(&a, &b, &cfg, Some(&mut inj), &mut dirty);
                    assert_outcome_bitexact(
                        &format!("{scheme:?} × {kind} × {kernel}"),
                        &first,
                        &replay,
                    );
                }
            }
        }
    }
}

//! End-to-end tests of the three resilient schemes under fault injection.

use ftcg_fault::{BitRange, FaultRate, Injector, InjectorConfig};
use ftcg_model::Scheme;
use ftcg_solvers::resilient::{solve_resilient, ResilientConfig};
use ftcg_sparse::{gen, vector, CsrMatrix};

fn test_system(n: usize, seed: u64) -> (CsrMatrix, Vec<f64>) {
    let a = gen::random_spd(n, 0.05, seed).unwrap();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.37).sin()).collect();
    (a, b)
}

fn injector_for(a: &CsrMatrix, alpha: f64, seed: u64) -> Injector {
    let layout = ftcg_fault::target::MemoryLayout::with_vectors(a.nnz(), a.n_rows());
    let rate = FaultRate::from_alpha(alpha, layout.total_words());
    let cfg = InjectorConfig {
        rate,
        value_bits: BitRange::Full,
        index_bits: BitRange::for_index_bound(a.n_cols().max(a.nnz() + 1)),
        include_vectors: true,
    };
    Injector::for_matrix(cfg, a, seed)
}

fn solves_correctly(_a: &CsrMatrix, b: &[f64], out: &ftcg_solvers::resilient::ResilientOutcome) {
    assert!(
        out.converged,
        "did not converge: rollbacks={} detections={}",
        out.rollbacks, out.detections
    );
    let rel = out.true_residual / vector::norm2(b);
    assert!(
        rel < 1e-6,
        "true residual too large: {rel} (undetected faults: {})",
        out.ledger.summary().undetected
    );
}

#[test]
fn all_schemes_converge_fault_free() {
    let (a, b) = test_system(150, 1);
    for scheme in Scheme::ALL {
        let cfg = ResilientConfig::new(scheme, 10);
        let out = solve_resilient(&a, &b, &cfg, None);
        solves_correctly(&a, &b, &out);
        assert_eq!(out.rollbacks, 0, "{scheme:?}");
        assert_eq!(out.detections, 0, "{scheme:?}: no faults, no detections");
        assert!(out.ledger.is_empty());
        assert_eq!(out.executed_iterations, out.productive_iterations);
    }
}

#[test]
fn fault_free_abft_takes_periodic_checkpoints() {
    let (a, b) = test_system(120, 2);
    let cfg = ResilientConfig::new(Scheme::AbftCorrection, 5);
    let out = solve_resilient(&a, &b, &cfg, None);
    assert!(out.converged);
    // roughly one checkpoint per 5 iterations
    let expected = out.productive_iterations / 5;
    assert!(
        out.checkpoints + 1 >= expected && out.checkpoints <= expected + 1,
        "{} checkpoints for {} iterations",
        out.checkpoints,
        out.productive_iterations
    );
}

#[test]
fn abft_correction_survives_moderate_fault_rate() {
    let (a, b) = test_system(150, 3);
    let cfg = ResilientConfig::new(Scheme::AbftCorrection, 14);
    // A single short run can get zero faults (the per-run expectation is
    // only ~1.5), so require strikes in aggregate across the seeds.
    let mut total_faults = 0usize;
    for seed in 0..5 {
        let mut inj = injector_for(&a, 1.0 / 16.0, seed);
        let out = solve_resilient(&a, &b, &cfg, Some(&mut inj));
        solves_correctly(&a, &b, &out);
        total_faults += out.ledger.len();
    }
    assert!(
        total_faults > 0,
        "at alpha=1/16 across five runs some faults must strike"
    );
}

#[test]
fn abft_detection_survives_moderate_fault_rate() {
    let (a, b) = test_system(150, 4);
    let cfg = ResilientConfig::new(Scheme::AbftDetection, 10);
    for seed in 0..5 {
        let mut inj = injector_for(&a, 1.0 / 16.0, seed);
        let out = solve_resilient(&a, &b, &cfg, Some(&mut inj));
        solves_correctly(&a, &b, &out);
    }
}

#[test]
fn online_detection_survives_moderate_fault_rate() {
    let (a, b) = test_system(150, 5);
    let mut cfg = ResilientConfig::new(Scheme::OnlineDetection, 4);
    cfg.verif_interval = 4;
    for seed in 0..5 {
        let mut inj = injector_for(&a, 1.0 / 32.0, seed);
        let out = solve_resilient(&a, &b, &cfg, Some(&mut inj));
        solves_correctly(&a, &b, &out);
    }
}

#[test]
fn correction_rolls_back_less_than_detection() {
    // Claim C2: forward recovery avoids most rollbacks.
    let (a, b) = test_system(200, 6);
    let mut det_rollbacks = 0usize;
    let mut cor_rollbacks = 0usize;
    let mut cor_corrections = 0usize;
    for seed in 0..8 {
        let mut inj = injector_for(&a, 1.0 / 8.0, seed);
        let out = solve_resilient(
            &a,
            &b,
            &ResilientConfig::new(Scheme::AbftDetection, 10),
            Some(&mut inj),
        );
        det_rollbacks += out.rollbacks;
        let mut inj = injector_for(&a, 1.0 / 8.0, seed);
        let out = solve_resilient(
            &a,
            &b,
            &ResilientConfig::new(Scheme::AbftCorrection, 10),
            Some(&mut inj),
        );
        cor_rollbacks += out.rollbacks;
        cor_corrections += out.forward_corrections + out.tmr_corrections;
    }
    assert!(
        cor_rollbacks < det_rollbacks,
        "correction {cor_rollbacks} rollbacks vs detection {det_rollbacks}"
    );
    assert!(cor_corrections > 0, "correction scheme never corrected");
}

#[test]
fn rollback_restores_exact_progress() {
    // After any run, productive_iterations must equal the fault-free CG
    // iteration count when every error was rolled back or corrected
    // exactly (undetected sub-tolerance flips may change it slightly).
    let (a, b) = test_system(100, 7);
    let clean = solve_resilient(
        &a,
        &b,
        &ResilientConfig::new(Scheme::AbftCorrection, 8),
        None,
    );
    let mut inj = injector_for(&a, 1.0 / 16.0, 11);
    let faulty = solve_resilient(
        &a,
        &b,
        &ResilientConfig::new(Scheme::AbftCorrection, 8),
        Some(&mut inj),
    );
    assert!(faulty.converged);
    let diff = (clean.productive_iterations as i64 - faulty.productive_iterations as i64).abs();
    assert!(
        diff <= clean.productive_iterations as i64 / 2 + 5,
        "productive iterations far apart: clean {} vs faulty {}",
        clean.productive_iterations,
        faulty.productive_iterations
    );
}

#[test]
fn executed_time_grows_with_fault_rate() {
    let (a, b) = test_system(150, 8);
    let cfg = ResilientConfig::new(Scheme::AbftDetection, 10);
    let mut times = Vec::new();
    for alpha in [1.0 / 256.0, 1.0 / 16.0, 1.0 / 4.0] {
        // average over seeds to damp variance
        let mut total = 0.0;
        for seed in 0..6 {
            let mut inj = injector_for(&a, alpha, 100 + seed);
            let out = solve_resilient(&a, &b, &cfg, Some(&mut inj));
            total += out.simulated_time;
        }
        times.push(total / 6.0);
    }
    assert!(
        times[0] < times[2],
        "time should grow with fault rate: {times:?}"
    );
}

#[test]
fn ledger_accounts_every_fault() {
    let (a, b) = test_system(120, 9);
    let mut inj = injector_for(&a, 1.0 / 8.0, 21);
    let out = solve_resilient(
        &a,
        &b,
        &ResilientConfig::new(Scheme::AbftCorrection, 10),
        Some(&mut inj),
    );
    let s = out.ledger.summary();
    assert_eq!(s.pending, 0, "all faults must be classified at run end");
    assert_eq!(
        s.total,
        s.corrected + s.rolled_back + s.undetected,
        "classification must partition the ledger"
    );
}

#[test]
fn high_fault_rate_still_terminates() {
    // At alpha close to 1 the run may not converge, but it must stop at
    // the executed-iterations cap without panicking.
    let (a, b) = test_system(80, 10);
    let mut cfg = ResilientConfig::new(Scheme::AbftDetection, 5);
    cfg.max_executed_iters = 2_000;
    let mut inj = injector_for(&a, 0.9, 33);
    let out = solve_resilient(&a, &b, &cfg, Some(&mut inj));
    assert!(out.executed_iterations <= 2_000);
}

#[test]
fn online_verifies_only_at_chunk_ends() {
    let (a, b) = test_system(100, 11);
    let mut cfg = ResilientConfig::new(Scheme::OnlineDetection, 3);
    cfg.verif_interval = 5;
    let out = solve_resilient(&a, &b, &cfg, None);
    assert!(out.converged);
    // Simulated time = iterations + verifications·tverif + checkpoints·tcp.
    let n_ver = (out.productive_iterations / 5) as f64 + 1.0; // + convergence check
    let expect = out.productive_iterations as f64
        + n_ver * cfg.costs.tverif
        + out.checkpoints as f64 * cfg.costs.tcp;
    assert!(
        (out.simulated_time - expect).abs() <= cfg.costs.tverif * 3.0,
        "time {} vs expected {expect}",
        out.simulated_time
    );
}

#[test]
fn works_on_poisson_grid() {
    let a = gen::poisson2d(14).unwrap();
    let n = a.n_rows();
    let xstar: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
    let b = a.spmv(&xstar);
    let cfg = ResilientConfig::new(Scheme::AbftCorrection, 12);
    let mut inj = injector_for(&a, 1.0 / 16.0, 5);
    let out = solve_resilient(&a, &b, &cfg, Some(&mut inj));
    assert!(out.converged);
    let err = vector::max_abs_diff(&out.x, &xstar);
    assert!(err < 1e-4, "solution error {err}");
}

#[test]
fn deterministic_given_seed() {
    let (a, b) = test_system(100, 12);
    let cfg = ResilientConfig::new(Scheme::AbftCorrection, 10);
    let mut i1 = injector_for(&a, 1.0 / 8.0, 77);
    let o1 = solve_resilient(&a, &b, &cfg, Some(&mut i1));
    let mut i2 = injector_for(&a, 1.0 / 8.0, 77);
    let o2 = solve_resilient(&a, &b, &cfg, Some(&mut i2));
    assert_eq!(o1.simulated_time, o2.simulated_time);
    assert_eq!(o1.x, o2.x);
    assert_eq!(o1.rollbacks, o2.rollbacks);
}

#[test]
fn kernel_backends_fault_free_match_csr_bitwise() {
    // On clean (column-sorted) data every backend computes the same
    // ordered sums, so the whole resilient trajectory is identical.
    use ftcg_kernels::KernelSpec;
    let (a, b) = test_system(150, 9);
    for scheme in Scheme::ALL {
        let reference = solve_resilient(&a, &b, &ResilientConfig::new(scheme, 10), None);
        for name in ["csr-par:3", "bcsr:2", "bcsr:4", "sell:8:32", "auto"] {
            let mut cfg = ResilientConfig::new(scheme, 10);
            cfg.kernel = KernelSpec::parse(name).unwrap();
            let out = solve_resilient(&a, &b, &cfg, None);
            assert_eq!(out.x, reference.x, "{scheme:?} kernel {name}");
            assert_eq!(
                out.productive_iterations, reference.productive_iterations,
                "{scheme:?} kernel {name}"
            );
        }
    }
}

#[test]
fn kernel_backends_survive_faults_with_abft() {
    // ABFT checksum verification composes with every backend: the
    // product comes from the live (corrupted) image whatever the
    // format, so detection and recovery still deliver a correct solve.
    use ftcg_kernels::KernelSpec;
    let (a, b) = test_system(150, 10);
    let mut total_faults = 0usize;
    for name in ["csr", "bcsr:2", "sell:8:32", "csr-par:2"] {
        for scheme in [Scheme::AbftDetection, Scheme::AbftCorrection] {
            let mut cfg = ResilientConfig::new(scheme, 8);
            cfg.kernel = KernelSpec::parse(name).unwrap();
            let mut inj = injector_for(&a, 1.0 / 8.0, 77);
            let out = solve_resilient(&a, &b, &cfg, Some(&mut inj));
            solves_correctly(&a, &b, &out);
            total_faults += out.ledger.len();
        }
    }
    assert!(total_faults > 0, "fault rate too low to exercise recovery");
}

#[test]
fn verification_counters_split_products_from_chunks() {
    let (a, b) = test_system(150, 11);
    // CG under ABFT: exactly one checksum-verified product per executed
    // iteration; the free per-iteration chunk checks are counted too.
    let cfg = ResilientConfig::new(Scheme::AbftDetection, 10);
    let out = solve_resilient(&a, &b, &cfg, None);
    assert!(out.converged);
    assert_eq!(out.product_checks, out.executed_iterations);
    assert_eq!(out.chunk_checks, out.executed_iterations);

    // BiCGStab charges *two* verified products per full iteration —
    // the undercount the split exists to expose (a half-step
    // convergence exit runs one fewer).
    let mut cfg = ResilientConfig::new(Scheme::AbftDetection, 10);
    cfg.solver = ftcg_solvers::machine::SolverKind::Bicgstab;
    let out = solve_resilient(&a, &b, &cfg, None);
    assert!(out.converged);
    assert!(
        out.product_checks >= 2 * out.executed_iterations - 1
            && out.product_checks <= 2 * out.executed_iterations,
        "bicgstab: {} product checks over {} iterations",
        out.product_checks,
        out.executed_iterations
    );

    // ONLINE-DETECTION never verifies products; it pays only at chunk
    // ends (one check per chunk boundary reached).
    let mut cfg = ResilientConfig::new(Scheme::OnlineDetection, 4);
    cfg.verif_interval = 6;
    let out = solve_resilient(&a, &b, &cfg, None);
    assert!(out.converged);
    assert_eq!(out.product_checks, 0);
    assert!(out.chunk_checks >= out.executed_iterations / 6);
    assert!(out.chunk_checks <= out.executed_iterations / 6 + 1);
}

#[test]
fn simulated_time_reconciles_with_verification_counters() {
    // The split counters make the time bill exactly reconstructible:
    //   time = executed·1 + tverif·product_checks
    //        + chunk_cost·chunk_checks + tcp·checkpoints + trec·rollbacks
    // where chunk_cost is tverif for ONLINE-DETECTION and 0 for ABFT.
    let (a, b) = test_system(150, 12);
    for scheme in Scheme::ALL {
        for (solver, alpha) in [
            (ftcg_solvers::machine::SolverKind::Cg, 1.0 / 8.0),
            (ftcg_solvers::machine::SolverKind::Bicgstab, 1.0 / 16.0),
        ] {
            let mut cfg = ResilientConfig::new(scheme, 6);
            cfg.solver = solver;
            cfg.verif_interval = 4;
            let mut inj = injector_for(&a, alpha, 55);
            let out = solve_resilient(&a, &b, &cfg, Some(&mut inj));
            let chunk_cost = match scheme {
                Scheme::OnlineDetection => cfg.costs.tverif,
                _ => 0.0,
            };
            let expected = out.executed_iterations as f64
                + cfg.costs.tverif * out.product_checks as f64
                + chunk_cost * out.chunk_checks as f64
                + cfg.costs.tcp * out.checkpoints as f64
                + cfg.costs.trec * out.rollbacks as f64;
            let err = (out.simulated_time - expected).abs();
            assert!(
                err < 1e-9 * expected.max(1.0),
                "{scheme:?}/{solver:?}: simulated {} vs reconstructed {expected}",
                out.simulated_time
            );
        }
    }
}

#[test]
fn recorded_solve_is_bit_identical_and_events_match_counters() {
    use ftcg_solvers::resilient::solve_resilient_recorded;
    use ftcg_solvers::SolverWorkspace;
    use ftcg_telemetry::{ActiveRecorder, EventKind};

    let (a, b) = test_system(150, 13);
    for scheme in Scheme::ALL {
        let mut cfg = ResilientConfig::new(scheme, 6);
        cfg.verif_interval = 4;
        let mut inj = injector_for(&a, 1.0 / 8.0, 99);
        let plain = solve_resilient(&a, &b, &cfg, Some(&mut inj));

        let mut inj = injector_for(&a, 1.0 / 8.0, 99);
        let mut ws = SolverWorkspace::new();
        let mut rec = ActiveRecorder::new();
        let traced = solve_resilient_recorded(&a, &b, &cfg, Some(&mut inj), &mut ws, &mut rec);

        // The recorder is an observer: outcomes are bit-identical.
        assert_eq!(plain.x, traced.x, "{scheme:?}");
        assert_eq!(
            plain.simulated_time.to_bits(),
            traced.simulated_time.to_bits(),
            "{scheme:?}"
        );
        assert_eq!(plain.rollbacks, traced.rollbacks);
        assert_eq!(plain.detections, traced.detections);
        assert_eq!(plain.product_checks, traced.product_checks);
        assert_eq!(plain.chunk_checks, traced.chunk_checks);

        // Every counter has its event-stream counterpart.
        let tele = rec.drain(0);
        let count = |k: EventKind| tele.event_counts[k.index()] as usize;
        assert_eq!(count(EventKind::Fault), traced.ledger.len(), "{scheme:?}");
        assert_eq!(count(EventKind::Rollback), traced.rollbacks, "{scheme:?}");
        assert_eq!(
            count(EventKind::Checkpoint),
            traced.checkpoints,
            "{scheme:?}"
        );
        assert_eq!(count(EventKind::Detect), traced.detections, "{scheme:?}");
        assert_eq!(
            tele.events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::CorrectForward | EventKind::CorrectTmr))
                .map(|e| e.b as usize)
                .sum::<usize>(),
            traced.forward_corrections + traced.tmr_corrections,
            "{scheme:?}"
        );
        assert_eq!(count(EventKind::Converged), traced.converged as usize);
        // Phases were actually timed.
        use ftcg_telemetry::Phase;
        assert_eq!(
            tele.phase_calls[Phase::Step.index()] as usize,
            traced.executed_iterations
        );
        assert_eq!(
            tele.phase_calls[Phase::ProductCheck.index()] as usize,
            traced.product_checks
        );
        assert_eq!(
            tele.phase_calls[Phase::ChunkVerify.index()] as usize,
            traced.chunk_checks
        );
        assert!(tele.phase_ns[Phase::Step.index()] > 0);
    }
}

//! End-to-end tests of the scheme-generic executor over the non-CG
//! solvers: every solver × every scheme must survive fault injection —
//! the combinations this refactor makes exist for the first time.

use ftcg_fault::{BitRange, FaultRate, Injector, InjectorConfig};
use ftcg_model::Scheme;
use ftcg_solvers::resilient::{solve_resilient, ResilientConfig};
use ftcg_solvers::SolverKind;
use ftcg_sparse::{gen, vector, CsrMatrix};

fn test_system(n: usize, seed: u64) -> (CsrMatrix, Vec<f64>) {
    let a = gen::random_spd(n, 0.05, seed).unwrap();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.37).sin()).collect();
    (a, b)
}

fn injector_for(a: &CsrMatrix, alpha: f64, seed: u64) -> Injector {
    let layout = ftcg_fault::target::MemoryLayout::with_vectors(a.nnz(), a.n_rows());
    let rate = FaultRate::from_alpha(alpha, layout.total_words());
    let cfg = InjectorConfig {
        rate,
        value_bits: BitRange::Full,
        index_bits: BitRange::for_index_bound(a.n_cols().max(a.nnz() + 1)),
        include_vectors: true,
    };
    Injector::for_matrix(cfg, a, seed)
}

fn config(scheme: Scheme, solver: SolverKind) -> ResilientConfig {
    let mut cfg = ResilientConfig::new(scheme, 8);
    cfg.solver = solver;
    if scheme == Scheme::OnlineDetection {
        cfg.verif_interval = 4;
    }
    cfg
}

#[test]
fn every_solver_converges_fault_free_under_every_scheme() {
    let (a, b) = test_system(150, 1);
    for solver in SolverKind::ALL {
        for scheme in Scheme::ALL {
            let out = solve_resilient(&a, &b, &config(scheme, solver), None);
            assert!(out.converged, "{solver} / {scheme:?}");
            assert_eq!(out.rollbacks, 0, "{solver} / {scheme:?}");
            assert_eq!(out.detections, 0, "{solver} / {scheme:?}");
            assert_eq!(out.executed_iterations, out.productive_iterations);
            let rel = out.true_residual / vector::norm2(&b);
            assert!(rel < 1e-6, "{solver} / {scheme:?}: residual {rel}");
        }
    }
}

#[test]
fn fault_free_resilient_matches_plain_solver_iterations() {
    // With no faults the executor is the plain machine plus protocol
    // bookkeeping: the productive trajectory must be the plain one.
    use ftcg_solvers::{
        bicgstab_solve, cg_solve, cgne_solve, pcg_jacobi_solve, CgConfig, SolveStats,
    };
    let (a, b) = test_system(140, 2);
    let plain: Vec<(SolverKind, SolveStats)> = vec![
        (
            SolverKind::Cg,
            cg_solve(&a, &b, &vec![0.0; 140], &CgConfig::default()),
        ),
        (
            SolverKind::Pcg,
            pcg_jacobi_solve(&a, &b, &vec![0.0; 140], &CgConfig::default()),
        ),
        (
            SolverKind::Bicgstab,
            bicgstab_solve(&a, &b, &vec![0.0; 140], &CgConfig::default()),
        ),
        (
            SolverKind::Cgne,
            cgne_solve(&a, &b, &vec![0.0; 140], &CgConfig::default()),
        ),
    ];
    for (solver, stats) in plain {
        let out = solve_resilient(&a, &b, &config(Scheme::AbftCorrection, solver), None);
        assert_eq!(out.productive_iterations, stats.iterations, "{solver}");
        assert_eq!(out.x, stats.x, "{solver}");
    }
}

#[test]
fn abft_correction_protects_every_solver() {
    let (a, b) = test_system(150, 3);
    let mut total_faults = 0usize;
    for solver in SolverKind::ALL {
        for seed in 0..4 {
            let mut inj = injector_for(&a, 1.0 / 16.0, seed);
            let out = solve_resilient(
                &a,
                &b,
                &config(Scheme::AbftCorrection, solver),
                Some(&mut inj),
            );
            assert!(out.converged, "{solver} seed {seed}");
            let rel = out.true_residual / vector::norm2(&b);
            assert!(rel < 1e-6, "{solver} seed {seed}: residual {rel}");
            total_faults += out.ledger.len();
        }
    }
    assert!(total_faults > 0, "rate too low to exercise recovery");
}

#[test]
fn abft_detection_protects_every_solver() {
    let (a, b) = test_system(150, 4);
    for solver in SolverKind::ALL {
        for seed in 0..4 {
            let mut inj = injector_for(&a, 1.0 / 16.0, seed);
            let out = solve_resilient(
                &a,
                &b,
                &config(Scheme::AbftDetection, solver),
                Some(&mut inj),
            );
            assert!(out.converged, "{solver} seed {seed}");
            let rel = out.true_residual / vector::norm2(&b);
            assert!(rel < 1e-6, "{solver} seed {seed}: residual {rel}");
        }
    }
}

#[test]
fn online_detection_protects_every_solver() {
    let (a, b) = test_system(150, 5);
    for solver in SolverKind::ALL {
        for seed in 0..4 {
            let mut inj = injector_for(&a, 1.0 / 32.0, seed);
            let out = solve_resilient(
                &a,
                &b,
                &config(Scheme::OnlineDetection, solver),
                Some(&mut inj),
            );
            assert!(out.converged, "{solver} seed {seed}");
            let rel = out.true_residual / vector::norm2(&b);
            assert!(rel < 1e-6, "{solver} seed {seed}: residual {rel}");
        }
    }
}

#[test]
fn abft_time_accounting_charges_per_verified_product() {
    // Fault-free ABFT run: time = Σ (1 + Tverif·products_run) + ck·Tcp,
    // with products_run per iteration between 1 and the solver's
    // nominal `verified_products` (BiCGStab's final half-step exit may
    // run only its first product).
    let (a, b) = test_system(120, 11);
    for solver in SolverKind::ALL {
        let cfg = config(Scheme::AbftDetection, solver);
        let out = solve_resilient(&a, &b, &cfg, None);
        assert!(out.converged, "{solver}");
        let nominal = solver.start_zero(&a, &b).verified_products() as f64;
        let it = out.executed_iterations as f64;
        let ck = out.checkpoints as f64 * cfg.costs.tcp;
        let lo = it * (1.0 + cfg.costs.tverif) + ck;
        let hi = it * (1.0 + nominal * cfg.costs.tverif) + ck;
        assert!(
            out.simulated_time >= lo - 1e-9 && out.simulated_time <= hi + 1e-9,
            "{solver}: time {} outside [{lo}, {hi}]",
            out.simulated_time
        );
    }
}

#[test]
fn online_never_false_positives_fault_free() {
    // The solver-specific stability tests (orthogonality for CG/PCG,
    // residual-only for BiCGStab/CGNE) must stay silent on clean runs —
    // a false positive would rollback-loop forever.
    let (a, b) = test_system(200, 6);
    for solver in SolverKind::ALL {
        let mut cfg = config(Scheme::OnlineDetection, solver);
        cfg.verif_interval = 2; // verify often
        let out = solve_resilient(&a, &b, &cfg, None);
        assert!(out.converged, "{solver}");
        assert_eq!(out.detections, 0, "{solver}: clean run false positive");
    }
}

#[test]
fn bicgstab_solves_nonsymmetric_under_faults() {
    // The solver axis opens workloads CG cannot touch: a non-symmetric
    // system under the full protocol.
    let n = 120;
    let mut coo = ftcg_sparse::CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 5.0);
        if i + 1 < n {
            coo.push(i, i + 1, -1.5);
        }
        if i >= 1 {
            coo.push(i, i - 1, -0.5);
        }
    }
    let a = coo.to_csr();
    assert!(!a.is_symmetric(1e-12));
    let xstar: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
    let b = a.spmv(&xstar);
    for solver in [SolverKind::Bicgstab, SolverKind::Cgne] {
        for scheme in [Scheme::AbftDetection, Scheme::AbftCorrection] {
            let mut inj = injector_for(&a, 1.0 / 16.0, 9);
            let out = solve_resilient(&a, &b, &config(scheme, solver), Some(&mut inj));
            assert!(out.converged, "{solver} / {scheme:?}");
            let err = vector::max_abs_diff(&out.x, &xstar);
            assert!(err < 1e-4, "{solver} / {scheme:?}: error {err}");
        }
    }
}

#[test]
fn every_solver_is_deterministic_given_seed() {
    let (a, b) = test_system(120, 7);
    for solver in SolverKind::ALL {
        for scheme in Scheme::ALL {
            let cfg = config(scheme, solver);
            let mut i1 = injector_for(&a, 1.0 / 8.0, 77);
            let o1 = solve_resilient(&a, &b, &cfg, Some(&mut i1));
            let mut i2 = injector_for(&a, 1.0 / 8.0, 77);
            let o2 = solve_resilient(&a, &b, &cfg, Some(&mut i2));
            assert_eq!(o1.x, o2.x, "{solver} / {scheme:?}");
            assert_eq!(o1.simulated_time, o2.simulated_time, "{solver}/{scheme:?}");
            assert_eq!(o1.rollbacks, o2.rollbacks, "{solver} / {scheme:?}");
        }
    }
}

#[test]
fn kernel_backends_compose_with_every_solver() {
    use ftcg_kernels::KernelSpec;
    let (a, b) = test_system(150, 8);
    for solver in SolverKind::ALL {
        let reference = solve_resilient(&a, &b, &config(Scheme::AbftCorrection, solver), None);
        for name in ["csr-par:3", "bcsr:2", "sell:8:32", "auto"] {
            let mut cfg = config(Scheme::AbftCorrection, solver);
            cfg.kernel = KernelSpec::parse(name).unwrap();
            let out = solve_resilient(&a, &b, &cfg, None);
            // Clean column-sorted data: every backend computes the same
            // ordered sums, so the whole trajectory is identical.
            assert_eq!(out.x, reference.x, "{solver} kernel {name}");
            assert_eq!(
                out.productive_iterations, reference.productive_iterations,
                "{solver} kernel {name}"
            );
        }
    }
}

#[test]
fn high_fault_rate_terminates_for_every_solver() {
    let (a, b) = test_system(80, 10);
    for solver in SolverKind::ALL {
        let mut cfg = config(Scheme::AbftDetection, solver);
        cfg.max_executed_iters = 2_000;
        let mut inj = injector_for(&a, 0.9, 33);
        let out = solve_resilient(&a, &b, &cfg, Some(&mut inj));
        assert!(out.executed_iterations <= 2_000, "{solver}");
    }
}

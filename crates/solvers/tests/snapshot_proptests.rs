//! Property tests for the solver state machines: a snapshot taken at
//! any iteration boundary, restored into a **fresh** machine, must
//! reproduce the uninterrupted trajectory bit for bit — for every
//! solver × kernel combination. This is the contract the resilient
//! executor's checkpoint/rollback relies on.
//!
//! Since the workspace-arena refactor the suite also pins the *reuse
//! contract*: solves drawing every buffer from a warm, dirty
//! [`SolverWorkspace`] must produce bit-identical outcomes to
//! fresh-allocation solves, across solver × scheme × kernel and under
//! fault injection.

use ftcg_checkpoint::SolverState;
use ftcg_kernels::KernelSpec;
use ftcg_model::Scheme;
use ftcg_solvers::machine::{PlainContext, SolverKind, StepResult};
use ftcg_solvers::resilient::{solve_resilient, solve_resilient_in, ResilientConfig};
use ftcg_solvers::{CanonVec, SolverWorkspace};
use ftcg_sparse::{gen, CsrMatrix};
use proptest::prelude::*;

const KERNELS: [&str; 4] = ["csr", "csr-par:2", "bcsr:2", "sell:8:32"];

fn system(n: usize, density_mil: usize, seed: u64) -> (CsrMatrix, Vec<f64>) {
    let a = gen::random_spd(n, density_mil as f64 / 1000.0, seed).unwrap();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.29).sin()).collect();
    (a, b)
}

/// Runs `total` steps; captures a [`SolverState`] after `cut` of them;
/// resumes a fresh machine from the snapshot and steps the remaining
/// `total − cut`. Both endpoints must agree bit for bit.
fn assert_resume_is_bitexact(
    kind: SolverKind,
    kernel: KernelSpec,
    a: &CsrMatrix,
    b: &[f64],
    cut: usize,
    total: usize,
) {
    let prepared = kernel.prepare(a).expect("kernel prepares");
    let mut ctx = PlainContext {
        a,
        kernel: prepared.as_ref(),
    };

    let mut reference = kind.start_zero(a, b);
    reference.set_threshold(0.0); // run to the step budget, not to convergence
    let mut snapshot: Option<SolverState> = None;
    for it in 0..total {
        if it == cut {
            snapshot = Some(reference.snapshot(it, a));
        }
        if reference.step(&mut ctx) != StepResult::Done {
            // Breakdown (e.g. residual hit exact zero): nothing further
            // to compare beyond this point.
            return;
        }
    }
    let snapshot = snapshot.expect("cut < total");

    let mut resumed = kind.start_zero(a, b);
    resumed.set_threshold(0.0);
    resumed.restore(&snapshot, a);
    for _ in cut..total {
        assert_eq!(resumed.step(&mut ctx), StepResult::Done, "{kind} resumed");
    }

    for which in [
        CanonVec::Iterate,
        CanonVec::Residual,
        CanonVec::Direction,
        CanonVec::Product,
    ] {
        let want = reference.vector(which);
        let got = resumed.vector(which);
        for i in 0..want.len() {
            assert_eq!(
                want[i].to_bits(),
                got[i].to_bits(),
                "{kind} × {}: {which:?}[{i}] diverged after resume at {cut}/{total}",
                kernel.label()
            );
        }
    }
    assert_eq!(
        reference.residual_norm().to_bits(),
        resumed.residual_norm().to_bits(),
        "{kind} × {}: residual norm diverged",
        kernel.label()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Resume mid-solve reproduces the uninterrupted trajectory for
    /// every solver × kernel (the ISSUE's headline property).
    #[test]
    fn snapshot_restore_step_is_deterministic(
        n in 30usize..90,
        density_mil in 40usize..90,
        seed in 0u64..500,
        cut in 1usize..8,
        extra in 1usize..8,
    ) {
        let (a, b) = system(n, density_mil, seed);
        for kind in SolverKind::ALL {
            for name in KERNELS {
                let kernel = KernelSpec::parse(name).unwrap();
                assert_resume_is_bitexact(kind, kernel, &a, &b, cut, cut + extra);
            }
        }
    }

    /// A snapshot round-trips through `SolverState` unchanged: the
    /// canonical vectors stored are exactly the machine's.
    #[test]
    fn snapshot_captures_canonical_vectors(
        n in 20usize..60,
        seed in 0u64..200,
        steps in 1usize..6,
    ) {
        let (a, b) = system(n, 60, seed);
        for kind in SolverKind::ALL {
            let prepared = KernelSpec::Csr.prepare(&a).unwrap();
            let mut ctx = PlainContext { a: &a, kernel: prepared.as_ref() };
            let mut m = kind.start_zero(&a, &b);
            m.set_threshold(0.0);
            for _ in 0..steps {
                if m.step(&mut ctx) != StepResult::Done {
                    break;
                }
            }
            let st = m.snapshot(steps, &a);
            prop_assert_eq!(st.iteration, steps);
            prop_assert_eq!(st.x.as_slice(), m.vector(CanonVec::Iterate));
            prop_assert_eq!(st.r.as_slice(), m.vector(CanonVec::Residual));
            prop_assert_eq!(st.p.as_slice(), m.vector(CanonVec::Direction));
            prop_assert_eq!(&st.matrix, &a);
        }
    }
}

/// The paper-model injector (matrix arrays + the four vectors), built
/// locally so the reuse property runs under real fault streams.
fn injector_for(a: &CsrMatrix, alpha: f64, seed: u64) -> ftcg_fault::Injector {
    use ftcg_fault::{target::MemoryLayout, BitRange, FaultRate, Injector, InjectorConfig};
    let layout = MemoryLayout::with_vectors(a.nnz(), a.n_rows());
    let cfg = InjectorConfig {
        rate: FaultRate::from_alpha(alpha, layout.total_words()),
        value_bits: BitRange::Full,
        index_bits: BitRange::for_index_bound(a.n_cols().max(a.nnz() + 1)),
        include_vectors: true,
    };
    Injector::for_matrix(cfg, a, seed)
}

/// Asserts two resilient outcomes agree bit for bit (solution vector
/// included) and in every counter.
fn assert_outcomes_bitexact(
    label: &str,
    fresh: &ftcg_solvers::ResilientOutcome,
    reused: &ftcg_solvers::ResilientOutcome,
) {
    assert_eq!(fresh.converged, reused.converged, "{label}: converged");
    assert_eq!(
        fresh.productive_iterations, reused.productive_iterations,
        "{label}: productive"
    );
    assert_eq!(
        fresh.executed_iterations, reused.executed_iterations,
        "{label}: executed"
    );
    assert_eq!(
        fresh.simulated_time.to_bits(),
        reused.simulated_time.to_bits(),
        "{label}: simulated time"
    );
    assert_eq!(
        fresh.checkpoints, reused.checkpoints,
        "{label}: checkpoints"
    );
    assert_eq!(fresh.rollbacks, reused.rollbacks, "{label}: rollbacks");
    assert_eq!(
        fresh.forward_corrections, reused.forward_corrections,
        "{label}: forward corrections"
    );
    assert_eq!(
        fresh.tmr_corrections, reused.tmr_corrections,
        "{label}: tmr corrections"
    );
    assert_eq!(fresh.detections, reused.detections, "{label}: detections");
    assert_eq!(
        fresh.true_residual.to_bits(),
        reused.true_residual.to_bits(),
        "{label}: true residual"
    );
    assert_eq!(fresh.x.len(), reused.x.len(), "{label}: x length");
    for i in 0..fresh.x.len() {
        assert_eq!(
            fresh.x[i].to_bits(),
            reused.x[i].to_bits(),
            "{label}: x[{i}] diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Workspace-reuse solves are bit-identical to fresh-allocation
    /// solves across solver × scheme × kernel, under fault injection —
    /// the reuse contract of the zero-allocation pipeline. The shared
    /// workspace is deliberately *dirty*: every combination in the grid
    /// reuses the same one, in sequence, and each outcome must still
    /// match its independently fresh-allocated twin.
    #[test]
    fn workspace_reuse_is_bitexact(
        n in 30usize..70,
        density_mil in 40usize..90,
        seed in 0u64..300,
        s in 2usize..8,
    ) {
        let (a, b) = system(n, density_mil, seed);
        let mut ws = SolverWorkspace::new();
        for scheme in [Scheme::AbftDetection, Scheme::AbftCorrection, Scheme::OnlineDetection] {
            for kind in SolverKind::ALL {
                for kernel in ["csr", "bcsr:2"] {
                    let mut cfg = ResilientConfig::new(scheme, s);
                    cfg.solver = kind;
                    cfg.kernel = KernelSpec::parse(kernel).unwrap();
                    cfg.max_productive_iters = 40;
                    cfg.max_executed_iters = 400;
                    let alpha = 1.0 / 16.0;
                    let mut inj = injector_for(&a, alpha, seed ^ 0x5eed);
                    let fresh = solve_resilient(&a, &b, &cfg, Some(&mut inj));
                    let mut inj = injector_for(&a, alpha, seed ^ 0x5eed);
                    let reused = solve_resilient_in(&a, &b, &cfg, Some(&mut inj), &mut ws);
                    assert_outcomes_bitexact(
                        &format!("{scheme:?} × {kind} × {kernel}"),
                        &fresh,
                        &reused,
                    );
                }
            }
        }
        // One workspace served the whole grid: machines retained per
        // solver, one pooled image shape.
        prop_assert_eq!(ws.retained_machines(), 4);
        prop_assert_eq!(ws.pooled_images(), 1);
    }
}

/// Deterministic spot-check on a structured matrix (fast, not random):
/// resume at several cut points of a longer run.
#[test]
fn poisson_resume_points_are_bitexact() {
    let a = gen::poisson2d(9).unwrap();
    let n = a.n_rows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.17).cos()).collect();
    for kind in SolverKind::ALL {
        for cut in [1usize, 3, 7] {
            assert_resume_is_bitexact(kind, KernelSpec::Csr, &a, &b, cut, cut + 5);
        }
    }
}

//! Blocked compressed sparse row (BCSR) storage.
//!
//! Entries are grouped into dense `b × b` register blocks (`b ∈ 1..=4`,
//! typically 2 or 4): each stored block is a dense tile whose absent
//! lanes are padded with explicit zeros, so the inner product loop is
//! branch-free and the working set per block row fits in registers. A
//! per-block occupancy bitmask remembers which lanes are *stored*
//! entries, which makes the CSR↔BCSR conversion an exact roundtrip of
//! the `(row, col, value)` triplets even when a value happens to be
//! zero.
//!
//! The product accumulates each row's contributions in ascending column
//! order (padding lanes add an exact `±0.0`), so on a column-sorted CSR
//! input the result matches [`CsrMatrix::spmv_into`] to the last bit for
//! finite inputs.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::multivec::MultiVec;
use crate::Result;

/// A sparse matrix in blocked CSR format with `b × b` dense blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct BcsrMatrix {
    n_rows: usize,
    n_cols: usize,
    /// Block edge length (`1..=4`; `b*b` lanes must fit the `u16` mask).
    b: usize,
    /// Number of block rows, `ceil(n_rows / b)`.
    n_block_rows: usize,
    /// Block-row pointer array, length `n_block_rows + 1`.
    blockptr: Vec<usize>,
    /// Block-column index per stored block.
    blockcol: Vec<usize>,
    /// Dense block storage, row-major within each block
    /// (`val[blk*b*b + r*b + c]`), absent lanes zero-padded.
    val: Vec<f64>,
    /// Occupancy bitmask per block: bit `r*b + c` set iff that lane is a
    /// stored CSR entry (as opposed to padding).
    mask: Vec<u16>,
    /// Logical stored entries (sum of mask popcounts).
    nnz: usize,
}

impl BcsrMatrix {
    /// Converts a CSR matrix into BCSR with `b × b` blocks.
    ///
    /// Duplicate `(row, col)` entries are accumulated. Returns an error
    /// for `b == 0` or `b > 4`.
    pub fn from_csr(a: &CsrMatrix, b: usize) -> Result<BcsrMatrix> {
        if b == 0 || b > 4 {
            return Err(SparseError::DimensionMismatch {
                detail: format!("BCSR block edge must be in 1..=4, got {b}"),
            });
        }
        Ok(Self::convert(a, b, false))
    }

    /// Defensive conversion for possibly corrupted CSR structure: row
    /// ranges are clamped to `[0, nnz]`, inverted ranges are treated as
    /// empty and out-of-range column indices are skipped — mirroring the
    /// clamping of [`CsrMatrix::row_product_clamped`], so the product of
    /// the converted matrix sums exactly the entries that a defensive
    /// CSR traversal would visit.
    ///
    /// # Panics
    /// Panics if `b == 0` or `b > 4` (trusted callers only).
    pub fn from_csr_clamped(a: &CsrMatrix, b: usize) -> BcsrMatrix {
        assert!((1..=4).contains(&b), "BCSR block edge must be in 1..=4");
        Self::convert(a, b, true)
    }

    fn convert(a: &CsrMatrix, b: usize, clamped: bool) -> BcsrMatrix {
        let n_rows = a.n_rows();
        let n_cols = a.n_cols();
        let n_block_rows = n_rows.div_ceil(b);
        let nnz_arr = a.val().len();
        let mut blockptr = Vec::with_capacity(n_block_rows + 1);
        blockptr.push(0usize);
        let mut blockcol = Vec::new();
        let mut val = Vec::new();
        let mut mask = Vec::new();
        let mut nnz = 0usize;
        // Scratch: block columns present in the current block row.
        let mut cols: Vec<usize> = Vec::new();
        for br in 0..n_block_rows {
            let row_lo = br * b;
            let row_hi = (row_lo + b).min(n_rows);
            cols.clear();
            for i in row_lo..row_hi {
                let (start, end) = row_bounds(a, i, nnz_arr, clamped);
                for k in start..end {
                    let j = a.colid()[k];
                    if clamped && j >= n_cols {
                        continue;
                    }
                    cols.push(j / b);
                }
            }
            cols.sort_unstable();
            cols.dedup();
            let base_blk = blockcol.len();
            blockcol.extend_from_slice(&cols);
            val.resize(val.len() + cols.len() * b * b, 0.0);
            mask.resize(mask.len() + cols.len(), 0u16);
            for i in row_lo..row_hi {
                let (start, end) = row_bounds(a, i, nnz_arr, clamped);
                for k in start..end {
                    let j = a.colid()[k];
                    if clamped && j >= n_cols {
                        continue;
                    }
                    let slot = cols
                        .binary_search(&(j / b))
                        .expect("invariant: first pass recorded every block column of this row");
                    let blk = base_blk + slot;
                    let lane = (i - row_lo) * b + (j % b);
                    val[blk * b * b + lane] += a.val()[k];
                    if mask[blk] & (1 << lane) == 0 {
                        mask[blk] |= 1 << lane;
                        nnz += 1;
                    }
                }
            }
            blockptr.push(blockcol.len());
        }
        BcsrMatrix {
            n_rows,
            n_cols,
            b,
            n_block_rows,
            blockptr,
            blockcol,
            val,
            mask,
            nnz,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Block edge length.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Logical stored entries (excluding padding lanes).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of stored `b × b` blocks.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.blockcol.len()
    }

    /// Fraction of stored block lanes that hold real entries
    /// (`nnz / (n_blocks · b²)`); 1.0 for an empty matrix.
    pub fn fill_ratio(&self) -> f64 {
        let lanes = self.n_blocks() * self.b * self.b;
        if lanes == 0 {
            return 1.0;
        }
        self.nnz as f64 / lanes as f64
    }

    /// `y ← A·x`.
    ///
    /// Block edges 2 and 4 dispatch to fully unrolled register-blocked
    /// kernels ([`BcsrMatrix::spmv_fixed`]); other edges use the generic
    /// loop. Both paths are bit-identical (per row, blocks ascending and
    /// lanes in ascending column order, one sequential add chain).
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols` or `y.len() != n_rows`.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "bcsr spmv: x length mismatch");
        assert_eq!(y.len(), self.n_rows, "bcsr spmv: y length mismatch");
        match self.b {
            2 => self.spmv_fixed::<2>(x, y),
            4 => self.spmv_fixed::<4>(x, y),
            _ => self.spmv_generic(x, y),
        }
    }

    /// The generic block-row product loop (any block edge) — the
    /// reference the fixed-edge kernels are verified against.
    fn spmv_generic(&self, x: &[f64], y: &mut [f64]) {
        let b = self.b;
        let mut acc = [0.0f64; 4];
        for br in 0..self.n_block_rows {
            let row_lo = br * b;
            let rows = b.min(self.n_rows - row_lo);
            acc[..rows].fill(0.0);
            for blk in self.blockptr[br]..self.blockptr[br + 1] {
                let col_lo = self.blockcol[blk] * b;
                let cols = b.min(self.n_cols - col_lo);
                let base = blk * b * b;
                for (r, a) in acc.iter_mut().enumerate().take(rows) {
                    let lanes = &self.val[base + r * b..base + r * b + cols];
                    let xs = &x[col_lo..col_lo + cols];
                    let mut s = *a;
                    for (v, xv) in lanes.iter().zip(xs) {
                        s += v * xv;
                    }
                    *a = s;
                }
            }
            y[row_lo..row_lo + rows].copy_from_slice(&acc[..rows]);
        }
    }

    /// Register-blocked fixed-edge kernel (`B ∈ {2, 4}`). Interior
    /// blocks load `x[col_lo..col_lo+B]` into a register tile once and
    /// run a fully unrolled `B × B` multiply-accumulate — the dense FMA
    /// shape register blocking exists for — while boundary blocks
    /// (partial rows or columns at the matrix edge) fall back to the
    /// generic bounded loop. Padding lanes participate exactly as in the
    /// generic kernel (an explicit `±0.0` add in sequence), and every
    /// row keeps one sequential accumulation chain in ascending column
    /// order, so outputs are bit-identical to
    /// [`BcsrMatrix::spmv_generic`].
    fn spmv_fixed<const B: usize>(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(self.b, B);
        for br in 0..self.n_block_rows {
            let row_lo = br * B;
            if row_lo + B > self.n_rows {
                // Partial final block row: generic bounded loop.
                let rows = self.n_rows - row_lo;
                let mut acc = [0.0f64; B];
                for blk in self.blockptr[br]..self.blockptr[br + 1] {
                    let col_lo = self.blockcol[blk] * B;
                    let cols = B.min(self.n_cols - col_lo);
                    let base = blk * B * B;
                    for (r, a) in acc.iter_mut().enumerate().take(rows) {
                        for c in 0..cols {
                            *a += self.val[base + r * B + c] * x[col_lo + c];
                        }
                    }
                }
                y[row_lo..row_lo + rows].copy_from_slice(&acc[..rows]);
                continue;
            }
            let mut acc = [0.0f64; B];
            for blk in self.blockptr[br]..self.blockptr[br + 1] {
                let col_lo = self.blockcol[blk] * B;
                let base = blk * B * B;
                if col_lo + B <= self.n_cols {
                    // Interior block: register tile, fully unrolled.
                    let xs: &[f64; B] = x[col_lo..col_lo + B]
                        .try_into()
                        .expect("invariant: interior block slice is exactly B wide");
                    let vs = &self.val[base..base + B * B];
                    for (r, a) in acc.iter_mut().enumerate() {
                        let row = &vs[r * B..(r + 1) * B];
                        let mut s = *a;
                        for c in 0..B {
                            s += row[c] * xs[c];
                        }
                        *a = s;
                    }
                } else {
                    // Partial final block column.
                    let cols = self.n_cols - col_lo;
                    for (r, a) in acc.iter_mut().enumerate() {
                        for c in 0..cols {
                            *a += self.val[base + r * B + c] * x[col_lo + c];
                        }
                    }
                }
            }
            y[row_lo..row_lo + B].copy_from_slice(&acc);
        }
    }

    /// Fused multi-RHS product `Y ← A·X`: each block row's tiles are
    /// traversed once per group of up to four right-hand sides. Every
    /// output column is the exact per-row sequential sum
    /// [`BcsrMatrix::spmv_into`] computes for that column alone —
    /// ascending blocks, ascending lanes, padding `±0.0` adds included —
    /// bit for bit (see the [`MultiVec`] determinism contract).
    ///
    /// # Panics
    /// Panics if `x.n() != n_cols`, `y.n() != n_rows`, or the column
    /// counts differ.
    pub fn spmm_into(&self, x: &MultiVec, y: &mut MultiVec) {
        assert_eq!(x.n(), self.n_cols, "bcsr spmm: x row count mismatch");
        assert_eq!(y.n(), self.n_rows, "bcsr spmm: y row count mismatch");
        assert_eq!(x.k(), y.k(), "bcsr spmm: column count mismatch");
        let (b, nc, nr, k) = (self.b, self.n_cols, self.n_rows, x.k());
        let xd = x.data();
        let yd = y.data_mut();
        let mut cb = 0;
        while cb < k {
            let w = (k - cb).min(4);
            for br in 0..self.n_block_rows {
                let row_lo = br * b;
                let rows = b.min(nr - row_lo);
                // acc[r][ci]: accumulator for output row `row_lo + r`,
                // RHS column `cb + ci`.
                let mut acc = [[0.0f64; 4]; 4];
                for blk in self.blockptr[br]..self.blockptr[br + 1] {
                    let col_lo = self.blockcol[blk] * b;
                    let cols = b.min(nc - col_lo);
                    let base = blk * b * b;
                    for (r, ar) in acc.iter_mut().enumerate().take(rows) {
                        for c in 0..cols {
                            let v = self.val[base + r * b + c];
                            for (ci, a) in ar.iter_mut().enumerate().take(w) {
                                *a += v * xd[(cb + ci) * nc + col_lo + c];
                            }
                        }
                    }
                }
                for (r, ar) in acc.iter().enumerate().take(rows) {
                    for (ci, a) in ar.iter().enumerate().take(w) {
                        yd[(cb + ci) * nr + row_lo + r] = *a;
                    }
                }
            }
            cb += w;
        }
    }

    /// Converts back to CSR (column-sorted; padding lanes dropped, stored
    /// entries kept even when their value is zero).
    pub fn to_csr(&self) -> CsrMatrix {
        let b = self.b;
        let mut rowptr = Vec::with_capacity(self.n_rows + 1);
        rowptr.push(0usize);
        let mut colid = Vec::with_capacity(self.nnz);
        let mut val = Vec::with_capacity(self.nnz);
        for br in 0..self.n_block_rows {
            let row_lo = br * b;
            let rows = b.min(self.n_rows - row_lo);
            for r in 0..rows {
                for blk in self.blockptr[br]..self.blockptr[br + 1] {
                    let col_lo = self.blockcol[blk] * b;
                    for c in 0..b {
                        let lane = r * b + c;
                        if self.mask[blk] & (1 << lane) != 0 {
                            colid.push(col_lo + c);
                            val.push(self.val[blk * b * b + lane]);
                        }
                    }
                }
                rowptr.push(colid.len());
            }
        }
        CsrMatrix::from_parts_unchecked(self.n_rows, self.n_cols, rowptr, colid, val)
    }
}

#[inline]
fn row_bounds(a: &CsrMatrix, i: usize, _nnz: usize, clamped: bool) -> (usize, usize) {
    if clamped {
        let r = a.row_range_clamped(i);
        (r.start, r.end)
    } else {
        (a.rowptr()[i], a.rowptr()[i + 1])
    }
}

/// Block fill ratio a CSR matrix *would* have after `b × b` blocking,
/// computed without materializing the blocks (the statistic the `auto`
/// kernel heuristic keys on).
pub fn block_fill_ratio(a: &CsrMatrix, b: usize) -> f64 {
    assert!(b >= 1, "block edge must be >= 1");
    let nnz = a.nnz();
    if nnz == 0 {
        return 1.0;
    }
    let mut blocks = 0usize;
    let mut cols: Vec<usize> = Vec::new();
    let n_block_rows = a.n_rows().div_ceil(b);
    for br in 0..n_block_rows {
        let row_lo = br * b;
        let row_hi = (row_lo + b).min(a.n_rows());
        cols.clear();
        for i in row_lo..row_hi {
            for k in a.row_range(i) {
                cols.push(a.colid()[k] / b);
            }
        }
        cols.sort_unstable();
        cols.dedup();
        blocks += cols.len();
    }
    nnz as f64 / (blocks * b * b) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn sample() -> CsrMatrix {
        // [ 4 1 0 ]
        // [ 1 3 1 ]
        // [ 0 1 2 ]
        CsrMatrix::new(
            3,
            3,
            vec![0, 2, 5, 7],
            vec![0, 1, 0, 1, 2, 1, 2],
            vec![4.0, 1.0, 1.0, 3.0, 1.0, 1.0, 2.0],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_triplets() {
        let a = sample();
        for b in [1usize, 2, 3, 4] {
            let blocked = BcsrMatrix::from_csr(&a, b).unwrap();
            let back = blocked.to_csr();
            assert_eq!(back.rowptr(), a.rowptr(), "b={b}");
            assert_eq!(back.colid(), a.colid(), "b={b}");
            assert_eq!(back.val(), a.val(), "b={b}");
        }
    }

    #[test]
    fn spmv_matches_csr_bitwise() {
        for seed in 0..5u64 {
            let a = gen::random_spd(120, 0.05, seed).unwrap();
            let x: Vec<f64> = (0..120).map(|i| (i as f64 * 0.31).cos()).collect();
            let want = a.spmv(&x);
            for b in [2usize, 4] {
                let blocked = BcsrMatrix::from_csr(&a, b).unwrap();
                let mut y = vec![0.0; 120];
                blocked.spmv_into(&x, &mut y);
                assert_eq!(y, want, "seed {seed} b {b}");
            }
        }
    }

    #[test]
    fn ragged_dimension_handled() {
        // 5x5 with b=2: last block row/col are partial.
        let a = gen::poisson2d(5).unwrap(); // order 25
        let blocked = BcsrMatrix::from_csr(&a, 2).unwrap();
        assert_eq!(blocked.nnz(), a.nnz());
        let x = vec![1.0; 25];
        let mut y = vec![0.0; 25];
        blocked.spmv_into(&x, &mut y);
        assert_eq!(y, a.spmv(&x));
    }

    #[test]
    fn fill_ratio_bounds() {
        let a = gen::poisson2d(8).unwrap();
        for b in [2usize, 4] {
            let blocked = BcsrMatrix::from_csr(&a, b).unwrap();
            let f = blocked.fill_ratio();
            assert!(f > 0.0 && f <= 1.0, "fill {f}");
            assert!((f - block_fill_ratio(&a, b)).abs() < 1e-15);
        }
        // b=1 stores exactly the nonzeros: fill ratio 1.
        let unit = BcsrMatrix::from_csr(&a, 1).unwrap();
        assert_eq!(unit.fill_ratio(), 1.0);
    }

    #[test]
    fn fixed_edge_kernels_are_bit_identical_to_generic() {
        for n in [3usize, 4, 5, 7, 8, 9, 30, 63, 64, 65] {
            let a = gen::random_spd(n, 0.2, n as u64).unwrap();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.47).sin() + 0.5).collect();
            for b in [2usize, 4] {
                let blocked = BcsrMatrix::from_csr(&a, b).unwrap();
                let mut fixed = vec![0.0; n];
                let mut generic = vec![0.0; n];
                blocked.spmv_into(&x, &mut fixed);
                blocked.spmv_generic(&x, &mut generic);
                for i in 0..n {
                    assert_eq!(
                        fixed[i].to_bits(),
                        generic[i].to_bits(),
                        "n {n} b {b} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn spmm_columns_are_bit_identical_to_spmv() {
        let a = gen::random_spd(90, 0.08, 11).unwrap();
        for b in [2usize, 3, 4] {
            let blocked = BcsrMatrix::from_csr(&a, b).unwrap();
            for k in [1usize, 2, 4, 5] {
                let mut x = MultiVec::zeros(90, k);
                for c in 0..k {
                    for (i, v) in x.col_mut(c).iter_mut().enumerate() {
                        *v = ((i * (c + 2)) as f64 * 0.13).cos();
                    }
                }
                let mut y = MultiVec::zeros(90, k);
                blocked.spmm_into(&x, &mut y);
                let mut want = vec![0.0; 90];
                for c in 0..k {
                    blocked.spmv_into(x.col(c), &mut want);
                    for (i, w) in want.iter().enumerate() {
                        assert_eq!(
                            y.col(c)[i].to_bits(),
                            w.to_bits(),
                            "b {b} k {k} col {c} row {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn explicit_zero_survives_roundtrip() {
        let a = CsrMatrix::new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1.0, 0.0, 3.0]).unwrap();
        let back = BcsrMatrix::from_csr(&a, 2).unwrap().to_csr();
        assert_eq!(back.rowptr(), a.rowptr());
        assert_eq!(back.colid(), a.colid());
        assert_eq!(back.val(), a.val());
    }

    #[test]
    fn clamped_conversion_survives_corruption() {
        let mut a = gen::poisson2d(4).unwrap();
        a.rowptr_mut()[5] = usize::MAX;
        a.colid_mut()[3] = 1 << 40;
        let blocked = BcsrMatrix::from_csr_clamped(&a, 2); // must not panic
        let mut y = vec![0.0; 16];
        blocked.spmv_into(&[1.0; 16], &mut y);
    }

    #[test]
    fn rejects_bad_block_size() {
        let a = sample();
        assert!(BcsrMatrix::from_csr(&a, 0).is_err());
        assert!(BcsrMatrix::from_csr(&a, 5).is_err());
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::new(0, 0, vec![0], vec![], vec![]).unwrap();
        let blocked = BcsrMatrix::from_csr(&a, 2).unwrap();
        assert_eq!(blocked.nnz(), 0);
        assert_eq!(blocked.fill_ratio(), 1.0);
        let mut y = vec![];
        blocked.spmv_into(&[], &mut y);
    }
}

//! Coordinate (triplet) format, used for assembly and MatrixMarket I/O.

use crate::csr::CsrMatrix;

/// A matrix under assembly as unordered `(row, col, value)` triplets.
///
/// Duplicate coordinates are *summed* on conversion to CSR, matching the
/// usual finite-element assembly convention and the MatrixMarket spec.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooMatrix {
    n_rows: usize,
    n_cols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `n_rows × n_cols` triplet matrix.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty matrix with room for `cap` triplets.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored triplets (before duplicate merging).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends a triplet.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n_rows, "coo push: row {i} out of bounds");
        assert!(j < self.n_cols, "coo push: col {j} out of bounds");
        self.rows.push(i);
        self.cols.push(j);
        self.vals.push(v);
    }

    /// Appends a triplet and, when off-diagonal, its mirror `(j, i, v)`.
    /// Convenience for symmetric MatrixMarket files.
    pub fn push_sym(&mut self, i: usize, j: usize, v: f64) {
        self.push(i, j, v);
        if i != j {
            self.push(j, i, v);
        }
    }

    /// Iterates over stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.vals.iter())
            .map(|((&i, &j), &v)| (i, j, v))
    }

    /// Converts to CSR, summing duplicates and sorting columns within rows.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row.
        let mut rowptr = vec![0usize; self.n_rows + 1];
        for &i in &self.rows {
            rowptr[i + 1] += 1;
        }
        for i in 0..self.n_rows {
            rowptr[i + 1] += rowptr[i];
        }
        let nnz = self.vals.len();
        let mut colid = vec![0usize; nnz];
        let mut val = vec![0.0; nnz];
        let mut next = rowptr.clone();
        for k in 0..nnz {
            let i = self.rows[k];
            let dst = next[i];
            colid[dst] = self.cols[k];
            val[dst] = self.vals[k];
            next[i] += 1;
        }
        // Sort within each row and merge duplicates.
        let mut out_rowptr = vec![0usize; self.n_rows + 1];
        let mut out_colid = Vec::with_capacity(nnz);
        let mut out_val = Vec::with_capacity(nnz);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for i in 0..self.n_rows {
            scratch.clear();
            scratch.extend(
                colid[rowptr[i]..rowptr[i + 1]]
                    .iter()
                    .copied()
                    .zip(val[rowptr[i]..rowptr[i + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < scratch.len() {
                let (c, mut v) = scratch[k];
                let mut k2 = k + 1;
                while k2 < scratch.len() && scratch[k2].0 == c {
                    v += scratch[k2].1;
                    k2 += 1;
                }
                out_colid.push(c);
                out_val.push(v);
                k = k2;
            }
            out_rowptr[i + 1] = out_colid.len();
        }
        CsrMatrix::from_parts_unchecked(self.n_rows, self.n_cols, out_rowptr, out_colid, out_val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_converts() {
        let coo = CooMatrix::new(2, 2);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.rowptr(), &[0, 0, 0]);
    }

    #[test]
    fn push_and_convert_sorted() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(1, 2, 3.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 2.0);
        let csr = coo.to_csr();
        assert_eq!(csr.rowptr(), &[0, 1, 3]);
        assert_eq!(csr.colid(), &[1, 0, 2]); // sorted within row 1
        assert_eq!(csr.val(), &[1.0, 2.0, 3.0]);
        csr.validate().unwrap();
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 1.5);
        coo.push(0, 0, 2.5);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 0), 4.0);
    }

    #[test]
    fn push_sym_mirrors_offdiagonal() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_sym(0, 1, 2.0);
        coo.push_sym(2, 2, 5.0);
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 1), 2.0);
        assert_eq!(csr.get(1, 0), 2.0);
        assert_eq!(csr.get(2, 2), 5.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_rejects_bad_row() {
        CooMatrix::new(1, 1).push(1, 0, 1.0);
    }

    #[test]
    fn iter_yields_all() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 2.0);
        let got: Vec<_> = coo.iter().collect();
        assert_eq!(got, vec![(0, 0, 1.0), (1, 1, 2.0)]);
    }

    #[test]
    fn with_capacity_reserves() {
        let coo = CooMatrix::with_capacity(4, 4, 16);
        assert_eq!(coo.nnz(), 0);
        assert_eq!(coo.n_rows(), 4);
        assert_eq!(coo.n_cols(), 4);
    }
}

//! Compressed sparse column (CSC) view.
//!
//! The ABFT column-checksum construction (`Cᵀ = WᵀA`) is naturally a
//! column-oriented computation; having an explicit CSC conversion lets the
//! checksum builder and the correction routine locate "the element of `Val`
//! corresponding to row d and column f" in O(col nnz) instead of scanning.

use crate::csr::CsrMatrix;

/// A sparse matrix in compressed sparse column format.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    n_rows: usize,
    n_cols: usize,
    colptr: Vec<usize>,
    rowid: Vec<usize>,
    val: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from a CSR matrix (O(nnz) counting sort).
    pub fn from_csr(a: &CsrMatrix) -> Self {
        let nnz = a.nnz();
        let mut colptr = vec![0usize; a.n_cols() + 1];
        for &c in a.colid() {
            colptr[c + 1] += 1;
        }
        for j in 0..a.n_cols() {
            colptr[j + 1] += colptr[j];
        }
        let mut rowid = vec![0usize; nnz];
        let mut val = vec![0.0; nnz];
        let mut next = colptr.clone();
        for i in 0..a.n_rows() {
            for k in a.row_range(i) {
                let c = a.colid()[k];
                let dst = next[c];
                rowid[dst] = i;
                val[dst] = a.val()[k];
                next[c] += 1;
            }
        }
        Self {
            n_rows: a.n_rows(),
            n_cols: a.n_cols(),
            colptr,
            rowid,
            val,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Column pointer array.
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row index array.
    pub fn rowid(&self) -> &[usize] {
        &self.rowid
    }

    /// Value array.
    pub fn val(&self) -> &[f64] {
        &self.val
    }

    /// Iterator over `(row, value)` pairs of column `j`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let r = self.colptr[j]..self.colptr[j + 1];
        self.rowid[r.clone()]
            .iter()
            .copied()
            .zip(self.val[r].iter().copied())
    }

    /// Column sums `Σᵢ aᵢⱼ` — the unshifted ABFT checksum.
    pub fn column_sums(&self) -> Vec<f64> {
        (0..self.n_cols)
            .map(|j| self.col(j).map(|(_, v)| v).sum())
            .collect()
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        let nnz = self.nnz();
        let mut rowptr = vec![0usize; self.n_rows + 1];
        for &r in &self.rowid {
            rowptr[r + 1] += 1;
        }
        for i in 0..self.n_rows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut colid = vec![0usize; nnz];
        let mut val = vec![0.0; nnz];
        let mut next = rowptr.clone();
        for j in 0..self.n_cols {
            for k in self.colptr[j]..self.colptr[j + 1] {
                let i = self.rowid[k];
                let dst = next[i];
                colid[dst] = j;
                val[dst] = self.val[k];
                next[i] += 1;
            }
        }
        CsrMatrix::from_parts_unchecked(self.n_rows, self.n_cols, rowptr, colid, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;

    fn sample() -> CsrMatrix {
        // [ 4 1 0 ]
        // [ 1 3 1 ]
        // [ 0 1 2 ]
        CsrMatrix::new(
            3,
            3,
            vec![0, 2, 5, 7],
            vec![0, 1, 0, 1, 2, 1, 2],
            vec![4.0, 1.0, 1.0, 3.0, 1.0, 1.0, 2.0],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_csr_csc_csr() {
        let a = sample();
        let back = CscMatrix::from_csr(&a).to_csr();
        assert_eq!(back.to_dense(), a.to_dense());
        back.validate().unwrap();
    }

    #[test]
    fn column_access() {
        let c = CscMatrix::from_csr(&sample());
        let col1: Vec<_> = c.col(1).collect();
        assert_eq!(col1, vec![(0, 1.0), (1, 3.0), (2, 1.0)]);
    }

    #[test]
    fn column_sums_match_csr() {
        let a = sample();
        let c = CscMatrix::from_csr(&a);
        assert_eq!(c.column_sums(), a.column_sums());
    }

    #[test]
    fn rectangular_roundtrip() {
        let a = CsrMatrix::new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let c = CscMatrix::from_csr(&a);
        assert_eq!(c.n_rows(), 2);
        assert_eq!(c.n_cols(), 3);
        assert_eq!(c.to_csr().to_dense(), a.to_dense());
    }

    #[test]
    fn empty_csc() {
        let a = CsrMatrix::new(0, 0, vec![0], vec![], vec![]).unwrap();
        let c = CscMatrix::from_csr(&a);
        assert_eq!(c.nnz(), 0);
    }
}

//! Compressed sparse row (CSR) matrix.
//!
//! The storage layout is exactly the one Algorithm 2 of the paper protects:
//! three arrays `Val ∈ R^{nnz}`, `Colid ∈ N^{nnz}` and `Rowidx ∈ N^{n+1}`
//! (named `val`, `colid`, `rowptr` here; the paper indexes rows from 1, we
//! index from 0). The fault injector corrupts these arrays directly through
//! the `*_mut` accessors, so the invariants documented on [`CsrMatrix::new`]
//! are *not* guaranteed to hold on a corrupted instance; use
//! [`CsrMatrix::validate`] to re-check them.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::multivec::MultiVec;
use crate::Result;

/// Rows per cache band of the row-band kernels: wide enough to amortize
/// loop overhead, small enough that a band's `rowptr`/`colid`/`val`
/// stay cache-resident while [`CsrMatrix::spmm_into`] re-traverses the
/// band once per 4-column group of the right-hand-side block.
const ROW_BAND: usize = 256;

/// Right-hand sides processed per fused traversal in the SpMM kernels
/// (bounded so the per-row accumulators stay in registers).
const RHS_BLOCK: usize = 4;

/// A sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    /// Row pointer array (`Rowidx` in the paper), length `n_rows + 1`.
    rowptr: Vec<usize>,
    /// Column indices (`Colid` in the paper), length `nnz`.
    colid: Vec<usize>,
    /// Nonzero values (`Val` in the paper), length `nnz`.
    val: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix after validating the invariants:
    ///
    /// * `rowptr.len() == n_rows + 1`, `rowptr[0] == 0`,
    ///   `rowptr[n_rows] == val.len()`, monotone non-decreasing;
    /// * `colid.len() == val.len()`;
    /// * every column index is `< n_cols`.
    pub fn new(
        n_rows: usize,
        n_cols: usize,
        rowptr: Vec<usize>,
        colid: Vec<usize>,
        val: Vec<f64>,
    ) -> Result<Self> {
        let m = Self {
            n_rows,
            n_cols,
            rowptr,
            colid,
            val,
        };
        m.validate()?;
        Ok(m)
    }

    /// Builds a CSR matrix without validation. Used by trusted generators
    /// and by the fault injector when *deliberately* producing corrupted
    /// instances.
    pub fn from_parts_unchecked(
        n_rows: usize,
        n_cols: usize,
        rowptr: Vec<usize>,
        colid: Vec<usize>,
        val: Vec<f64>,
    ) -> Self {
        Self {
            n_rows,
            n_cols,
            rowptr,
            colid,
            val,
        }
    }

    /// Re-checks all structural invariants; `Ok(())` iff the instance is a
    /// well-formed CSR matrix.
    pub fn validate(&self) -> Result<()> {
        if self.rowptr.len() != self.n_rows + 1 {
            return Err(SparseError::MalformedRowPtr {
                detail: format!(
                    "rowptr has length {}, expected {}",
                    self.rowptr.len(),
                    self.n_rows + 1
                ),
            });
        }
        if self.rowptr[0] != 0 {
            return Err(SparseError::MalformedRowPtr {
                detail: format!("rowptr[0] = {}, expected 0", self.rowptr[0]),
            });
        }
        // Length == n_rows + 1 was verified above, so the last entry
        // is addressable directly.
        if self.rowptr[self.n_rows] != self.val.len() {
            return Err(SparseError::MalformedRowPtr {
                detail: format!(
                    "rowptr[n] = {}, expected nnz = {}",
                    self.rowptr[self.n_rows],
                    self.val.len()
                ),
            });
        }
        if self.rowptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::MalformedRowPtr {
                detail: "rowptr is not monotone non-decreasing".into(),
            });
        }
        if self.colid.len() != self.val.len() {
            return Err(SparseError::DimensionMismatch {
                detail: format!(
                    "colid has {} entries, val has {}",
                    self.colid.len(),
                    self.val.len()
                ),
            });
        }
        if let Some(&bad) = self.colid.iter().find(|&&c| c >= self.n_cols) {
            return Err(SparseError::IndexOutOfBounds {
                index: bad,
                bound: self.n_cols,
            });
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of explicitly stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// `true` iff the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.n_rows == self.n_cols
    }

    /// Fill ratio `nnz / (n_rows · n_cols)`.
    pub fn density(&self) -> f64 {
        if self.n_rows == 0 || self.n_cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.n_rows as f64 * self.n_cols as f64)
    }

    /// Number of machine words occupied by the three CSR arrays
    /// (`Val` + `Colid` + `Rowidx`), the quantity the paper's fault model
    /// scales the error rate by.
    pub fn memory_words(&self) -> usize {
        2 * self.nnz() + self.n_rows + 1
    }

    /// Row pointer array (read-only).
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column index array (read-only).
    #[inline]
    pub fn colid(&self) -> &[usize] {
        &self.colid
    }

    /// Value array (read-only).
    #[inline]
    pub fn val(&self) -> &[f64] {
        &self.val
    }

    /// Mutable row pointer array — exposed for fault injection and ABFT
    /// correction only.
    #[inline]
    pub fn rowptr_mut(&mut self) -> &mut [usize] {
        &mut self.rowptr
    }

    /// Mutable column index array — exposed for fault injection and ABFT
    /// correction only.
    #[inline]
    pub fn colid_mut(&mut self) -> &mut [usize] {
        &mut self.colid
    }

    /// Mutable value array — exposed for fault injection and ABFT
    /// correction only.
    #[inline]
    pub fn val_mut(&mut self) -> &mut [f64] {
        &mut self.val
    }

    /// The half-open range of storage positions for row `i`.
    ///
    /// # Panics
    /// Panics if `i >= n_rows`.
    #[inline]
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        self.rowptr[i]..self.rowptr[i + 1]
    }

    /// Iterator over `(col, value)` pairs of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let r = self.row_range(i);
        self.colid[r.clone()]
            .iter()
            .copied()
            .zip(self.val[r].iter().copied())
    }

    /// Value at `(i, j)`, or `0.0` if not stored. Linear in the row length.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row(i)
            .find(|&(c, _)| c == j)
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Sparse matrix–vector product `y ← A·x` into a caller-provided buffer.
    ///
    /// This is the *unprotected* kernel; the ABFT-protected version lives in
    /// `ftcg-abft::spmv` and reproduces this loop with checksum accumulation.
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols` or `y.len() != n_rows`.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.n_rows, "spmv: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                acc += self.val[k] * x[self.colid[k]];
            }
            *yi = acc;
        }
    }

    /// Allocating convenience wrapper around [`CsrMatrix::spmv_into`].
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Cache-blocked row-band `y ← A·x`: rows are processed four at a
    /// time with one independent accumulator chain per row, so the four
    /// serial floating-point add chains overlap in the pipeline instead
    /// of serializing on one accumulator's latency. **Bit-identical** to
    /// [`CsrMatrix::spmv_into`]: each row's entries are summed in the
    /// same ascending storage order into its own accumulator — only the
    /// interleaving of *independent* rows changes, which no output cell
    /// observes.
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols` or `y.len() != n_rows`.
    pub fn spmv_rowband_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.n_rows, "spmv: y length mismatch");
        let (colid, val) = (&self.colid[..], &self.val[..]);
        let mut i = 0;
        while i + 4 <= self.n_rows {
            let s = [
                self.rowptr[i],
                self.rowptr[i + 1],
                self.rowptr[i + 2],
                self.rowptr[i + 3],
            ];
            let e = self.rowptr[i + 4];
            let lens = [s[1] - s[0], s[2] - s[1], s[3] - s[2], e - s[3]];
            let m = lens[0].min(lens[1]).min(lens[2]).min(lens[3]);
            let mut acc = [0.0f64; 4];
            // Lockstep section: all four rows have at least `m` entries.
            for j in 0..m {
                let k = [s[0] + j, s[1] + j, s[2] + j, s[3] + j];
                acc[0] += val[k[0]] * x[colid[k[0]]];
                acc[1] += val[k[1]] * x[colid[k[1]]];
                acc[2] += val[k[2]] * x[colid[k[2]]];
                acc[3] += val[k[3]] * x[colid[k[3]]];
            }
            // Per-row tails, still in ascending storage order.
            for (lane, a) in acc.iter_mut().enumerate() {
                for k in s[lane] + m..s[lane] + lens[lane] {
                    *a += val[k] * x[colid[k]];
                }
            }
            y[i..i + 4].copy_from_slice(&acc);
            i += 4;
        }
        for (i, yi) in y.iter_mut().enumerate().skip(i) {
            let mut acc = 0.0;
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                acc += val[k] * x[colid[k]];
            }
            *yi = acc;
        }
    }

    /// Fused multi-RHS product `Y ← A·X` (the batched form of
    /// [`CsrMatrix::spmv_into`]): one traversal of the matrix band
    /// serves up to [`RHS_BLOCK`] right-hand sides, and row bands keep
    /// the CSR arrays cache-resident across the column groups.
    ///
    /// **Determinism:** each output column is computed as the exact
    /// floating-point sum `spmv_into` computes for that column alone —
    /// same entries, same ascending storage order, bit for bit (see the
    /// [`MultiVec`] contract).
    ///
    /// # Panics
    /// Panics if `x.n() != n_cols`, `y.n() != n_rows`, or the column
    /// counts differ.
    pub fn spmm_into(&self, x: &MultiVec, y: &mut MultiVec) {
        assert_eq!(x.n(), self.n_cols, "spmm: x row count mismatch");
        assert_eq!(y.n(), self.n_rows, "spmm: y row count mismatch");
        assert_eq!(x.k(), y.k(), "spmm: column count mismatch");
        let (n, nc, k) = (self.n_rows, self.n_cols, x.k());
        let (colid, val) = (&self.colid[..], &self.val[..]);
        let xd = x.data();
        let yd = y.data_mut();
        for lo in (0..n).step_by(ROW_BAND) {
            let hi = (lo + ROW_BAND).min(n);
            let mut cb = 0;
            while cb < k {
                let w = (k - cb).min(RHS_BLOCK);
                for i in lo..hi {
                    let mut acc = [0.0f64; RHS_BLOCK];
                    for kk in self.rowptr[i]..self.rowptr[i + 1] {
                        let v = val[kk];
                        let j = colid[kk];
                        for (c, a) in acc.iter_mut().enumerate().take(w) {
                            *a += v * xd[(cb + c) * nc + j];
                        }
                    }
                    for (c, a) in acc.iter().enumerate().take(w) {
                        yd[(cb + c) * n + i] = *a;
                    }
                }
                cb += w;
            }
        }
    }

    /// Defensive fused multi-RHS product `Y ← A·X` — the batched form of
    /// [`CsrMatrix::spmv_clamped_into`], applying the same clamping rule
    /// per entry ([`CsrMatrix::row_range_clamped`] bounds, out-of-range
    /// columns skipped). On a well-formed matrix each column is
    /// bit-identical to the clamped single-vector product, which is
    /// itself bit-identical to the plain one.
    ///
    /// # Panics
    /// Panics if `x.n() != n_cols`, `y.n() != n_rows`, or the column
    /// counts differ (buffers are caller state, not corruptible matrix
    /// data).
    pub fn spmm_clamped_into(&self, x: &MultiVec, y: &mut MultiVec) {
        assert_eq!(x.n(), self.n_cols, "spmm_clamped: x row count mismatch");
        assert_eq!(y.n(), self.n_rows, "spmm_clamped: y row count mismatch");
        assert_eq!(x.k(), y.k(), "spmm_clamped: column count mismatch");
        let (n, nc, k) = (self.n_rows, self.n_cols, x.k());
        let (colid, val) = (&self.colid[..], &self.val[..]);
        let xd = x.data();
        let yd = y.data_mut();
        for lo in (0..n).step_by(ROW_BAND) {
            let hi = (lo + ROW_BAND).min(n);
            let mut cb = 0;
            while cb < k {
                let w = (k - cb).min(RHS_BLOCK);
                for i in lo..hi {
                    let mut acc = [0.0f64; RHS_BLOCK];
                    for kk in self.row_range_clamped(i) {
                        let j = colid[kk];
                        if j < nc {
                            let v = val[kk];
                            for (c, a) in acc.iter_mut().enumerate().take(w) {
                                *a += v * xd[(cb + c) * nc + j];
                            }
                        }
                    }
                    for (c, a) in acc.iter().enumerate().take(w) {
                        yd[(cb + c) * n + i] = *a;
                    }
                }
                cb += w;
            }
        }
    }

    /// `y ← A·x` with the ABFT output probe accumulated in the same
    /// pass: returns `[Σᵢ yᵢ, Σᵢ (i+1)·yᵢ]` (see
    /// [`fused::probe_of`](crate::fused::probe_of)). The product runs
    /// the row-band kernel ([`CsrMatrix::spmv_rowband_into`], itself
    /// bit-identical to [`CsrMatrix::spmv_into`]); each row's output is
    /// folded into the probe chains the moment it is finalized, and rows
    /// finalize in ascending index order, so the probe is bit-identical
    /// to a separate `probe_of(y)` sweep — without re-reading `y`.
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols` or `y.len() != n_rows`.
    pub fn spmv_with_probe_into(&self, x: &[f64], y: &mut [f64]) -> [f64; 2] {
        assert_eq!(x.len(), self.n_cols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.n_rows, "spmv: y length mismatch");
        let (colid, val) = (&self.colid[..], &self.val[..]);
        let mut p0 = -0.0;
        let mut p1 = -0.0;
        let mut i = 0;
        while i + 4 <= self.n_rows {
            let s = [
                self.rowptr[i],
                self.rowptr[i + 1],
                self.rowptr[i + 2],
                self.rowptr[i + 3],
            ];
            let e = self.rowptr[i + 4];
            let lens = [s[1] - s[0], s[2] - s[1], s[3] - s[2], e - s[3]];
            let m = lens[0].min(lens[1]).min(lens[2]).min(lens[3]);
            let mut acc = [0.0f64; 4];
            for j in 0..m {
                let k = [s[0] + j, s[1] + j, s[2] + j, s[3] + j];
                acc[0] += val[k[0]] * x[colid[k[0]]];
                acc[1] += val[k[1]] * x[colid[k[1]]];
                acc[2] += val[k[2]] * x[colid[k[2]]];
                acc[3] += val[k[3]] * x[colid[k[3]]];
            }
            for (lane, a) in acc.iter_mut().enumerate() {
                for k in s[lane] + m..s[lane] + lens[lane] {
                    *a += val[k] * x[colid[k]];
                }
            }
            y[i..i + 4].copy_from_slice(&acc);
            for (lane, a) in acc.iter().enumerate() {
                p0 += a;
                p1 += (i + lane + 1) as f64 * a;
            }
            i += 4;
        }
        for (i, yi) in y.iter_mut().enumerate().skip(i) {
            let mut acc = 0.0;
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                acc += val[k] * x[colid[k]];
            }
            *yi = acc;
            p0 += acc;
            p1 += (i + 1) as f64 * acc;
        }
        [p0, p1]
    }

    /// Defensive `y ← A·x` with the ABFT output probe accumulated in
    /// the same pass — the clamped counterpart of
    /// [`CsrMatrix::spmv_with_probe_into`]: the product is bit-identical
    /// to [`CsrMatrix::spmv_clamped_rowband_into`] and the returned
    /// probe to a separate
    /// [`fused::probe_of`](crate::fused::probe_of)`(y)` sweep, with rows
    /// folded into the probe chains in ascending index order as they
    /// finalize.
    ///
    /// # Panics
    /// Panics if `y.len() != n_rows` (the output buffer is caller
    /// state, not corruptible matrix data).
    pub fn spmv_clamped_probe_into(&self, x: &[f64], y: &mut [f64]) -> [f64; 2] {
        assert_eq!(y.len(), self.n_rows, "spmv_clamped: y length mismatch");
        let (colid, val) = (&self.colid[..], &self.val[..]);
        let mut p0 = -0.0;
        let mut p1 = -0.0;
        let mut i = 0;
        while i + 4 <= self.n_rows {
            let r = [
                self.row_range_clamped(i),
                self.row_range_clamped(i + 1),
                self.row_range_clamped(i + 2),
                self.row_range_clamped(i + 3),
            ];
            let m = r[0].len().min(r[1].len()).min(r[2].len()).min(r[3].len());
            let mut acc = [0.0f64; 4];
            for j in 0..m {
                for (lane, a) in acc.iter_mut().enumerate() {
                    let k = r[lane].start + j;
                    let c = colid[k];
                    if c < x.len() {
                        *a += val[k] * x[c];
                    }
                }
            }
            for (lane, a) in acc.iter_mut().enumerate() {
                for k in r[lane].start + m..r[lane].end {
                    let c = colid[k];
                    if c < x.len() {
                        *a += val[k] * x[c];
                    }
                }
            }
            y[i..i + 4].copy_from_slice(&acc);
            for (lane, a) in acc.iter().enumerate() {
                p0 += a;
                p1 += (i + lane + 1) as f64 * a;
            }
            i += 4;
        }
        while i < self.n_rows {
            let acc = self.row_product_clamped(x, i);
            y[i] = acc;
            p0 += acc;
            p1 += (i + 1) as f64 * acc;
            i += 1;
        }
        [p0, p1]
    }

    /// Fused multi-RHS product with per-column ABFT probes: `probes[c]`
    /// receives the probe of output column `c`, accumulated as the
    /// column's rows are written. The outputs are bit-identical to
    /// [`CsrMatrix::spmm_into`] and each probe to a separate
    /// [`fused::probe_of`](crate::fused::probe_of) over that column —
    /// within every column the traversal finalizes rows in ascending
    /// index order (row bands outer, ascending; rows inside each band
    /// ascending), so each column's probe chains accumulate in exactly
    /// the separate sweep's order.
    ///
    /// # Panics
    /// Panics on the [`CsrMatrix::spmm_into`] dimension mismatches or
    /// if `probes.len() != x.k()`.
    pub fn spmm_with_probe_into(&self, x: &MultiVec, y: &mut MultiVec, probes: &mut [[f64; 2]]) {
        assert_eq!(x.n(), self.n_cols, "spmm: x row count mismatch");
        assert_eq!(y.n(), self.n_rows, "spmm: y row count mismatch");
        assert_eq!(x.k(), y.k(), "spmm: column count mismatch");
        assert_eq!(probes.len(), x.k(), "spmm: probe count mismatch");
        let (n, nc, k) = (self.n_rows, self.n_cols, x.k());
        let (colid, val) = (&self.colid[..], &self.val[..]);
        let xd = x.data();
        let yd = y.data_mut();
        for p in probes.iter_mut() {
            *p = [-0.0, -0.0];
        }
        for lo in (0..n).step_by(ROW_BAND) {
            let hi = (lo + ROW_BAND).min(n);
            let mut cb = 0;
            while cb < k {
                let w = (k - cb).min(RHS_BLOCK);
                for i in lo..hi {
                    let mut acc = [0.0f64; RHS_BLOCK];
                    for kk in self.rowptr[i]..self.rowptr[i + 1] {
                        let v = val[kk];
                        let j = colid[kk];
                        for (c, a) in acc.iter_mut().enumerate().take(w) {
                            *a += v * xd[(cb + c) * nc + j];
                        }
                    }
                    for (c, a) in acc.iter().enumerate().take(w) {
                        yd[(cb + c) * n + i] = *a;
                        probes[cb + c][0] += *a;
                        probes[cb + c][1] += (i + 1) as f64 * *a;
                    }
                }
                cb += w;
            }
        }
    }

    /// Storage range of row `i` with the defensive clamping rule: both
    /// bounds clamped to `[0, nnz]`, an inverted range treated as an
    /// empty row. The one canonical clamp shared by the ABFT kernel
    /// (`ftcg-abft`), the pluggable backends (`ftcg-kernels`) and the
    /// defensive BCSR/SELL converters — change it here, never locally.
    #[inline]
    pub fn row_range_clamped(&self, i: usize) -> std::ops::Range<usize> {
        let nnz = self.val.len();
        let start = self.rowptr[i].min(nnz);
        let end = self.rowptr[i + 1].min(nnz);
        if start < end {
            start..end
        } else {
            0..0
        }
    }

    /// Product of row `i` with `x` that tolerates corrupted structure:
    /// the row range follows [`CsrMatrix::row_range_clamped`] and
    /// out-of-range column indices are skipped. On a well-formed matrix
    /// this visits exactly the entries [`CsrMatrix::spmv_into`] visits,
    /// in the same order.
    #[inline]
    pub fn row_product_clamped(&self, x: &[f64], i: usize) -> f64 {
        let mut acc = 0.0;
        for k in self.row_range_clamped(i) {
            let j = self.colid[k];
            if j < x.len() {
                acc += self.val[k] * x[j];
            }
        }
        acc
    }

    /// Defensive `y ← A·x` built on [`CsrMatrix::row_product_clamped`];
    /// never panics on corrupted `rowptr`/`colid` contents.
    ///
    /// # Panics
    /// Panics if `y.len() != n_rows` (the output buffer is caller state,
    /// not corruptible matrix data).
    pub fn spmv_clamped_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(y.len(), self.n_rows, "spmv_clamped: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = self.row_product_clamped(x, i);
        }
    }

    /// Defensive products of the row band `rows` into `y` (one output
    /// per row of the band), with the row-band interleaving of
    /// [`CsrMatrix::spmv_rowband_into`]: four clamped rows advance in
    /// lockstep, each summing into its own accumulator in ascending
    /// storage order with the [`CsrMatrix::row_product_clamped`] skip
    /// rule — bit-identical to calling `row_product_clamped` per row.
    /// The building block both the serial and the parallel defensive
    /// row-band products share.
    ///
    /// # Panics
    /// Panics if `rows.end > n_rows` or `y.len() != rows.len()`.
    pub fn row_band_product_clamped(&self, rows: std::ops::Range<usize>, x: &[f64], y: &mut [f64]) {
        assert!(rows.end <= self.n_rows, "row band out of range");
        assert_eq!(y.len(), rows.len(), "row band: y length mismatch");
        let (colid, val) = (&self.colid[..], &self.val[..]);
        let mut i = rows.start;
        let mut o = 0;
        while i + 4 <= rows.end {
            let r = [
                self.row_range_clamped(i),
                self.row_range_clamped(i + 1),
                self.row_range_clamped(i + 2),
                self.row_range_clamped(i + 3),
            ];
            let m = r[0].len().min(r[1].len()).min(r[2].len()).min(r[3].len());
            let mut acc = [0.0f64; 4];
            // Lockstep section: every lane has at least `m` entries.
            for j in 0..m {
                for (lane, a) in acc.iter_mut().enumerate() {
                    let k = r[lane].start + j;
                    let c = colid[k];
                    if c < x.len() {
                        *a += val[k] * x[c];
                    }
                }
            }
            // Per-lane tails, same order and skip rule.
            for (lane, a) in acc.iter_mut().enumerate() {
                for k in r[lane].start + m..r[lane].end {
                    let c = colid[k];
                    if c < x.len() {
                        *a += val[k] * x[c];
                    }
                }
            }
            y[o..o + 4].copy_from_slice(&acc);
            i += 4;
            o += 4;
        }
        while i < rows.end {
            y[o] = self.row_product_clamped(x, i);
            i += 1;
            o += 1;
        }
    }

    /// Defensive `y ← A·x` through the cache-blocked row-band kernel —
    /// the same outputs as [`CsrMatrix::spmv_clamped_into`], bit for bit
    /// (see [`CsrMatrix::row_band_product_clamped`]), with four
    /// independent accumulator chains in flight.
    ///
    /// # Panics
    /// Panics if `y.len() != n_rows`.
    pub fn spmv_clamped_rowband_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(y.len(), self.n_rows, "spmv_clamped: y length mismatch");
        self.row_band_product_clamped(0..self.n_rows, x, y);
    }

    /// Copies the *value* array of `src` into this matrix in place — the
    /// fast restore path when only `Val` may differ. The two matrices
    /// must share one sparsity pattern; the pattern equality itself is a
    /// `debug_assert` (it costs a full `rowptr`/`colid` comparison, too
    /// expensive for a release-mode hot path that upholds the invariant
    /// by construction).
    ///
    /// # Panics
    /// Panics if the dimensions or `nnz` differ; debug-panics if the
    /// sparsity patterns (`rowptr`/`colid`) differ.
    pub fn copy_values_from(&mut self, src: &CsrMatrix) {
        assert_eq!(
            (self.n_rows, self.n_cols),
            (src.n_rows, src.n_cols),
            "copy_values_from: dimension mismatch"
        );
        assert_eq!(
            self.val.len(),
            src.val.len(),
            "copy_values_from: nnz mismatch"
        );
        debug_assert!(
            self.rowptr == src.rowptr && self.colid == src.colid,
            "copy_values_from: sparsity patterns differ"
        );
        self.val.copy_from_slice(&src.val);
    }

    /// Restores the full image of `src` — all three CSR arrays — into
    /// this matrix in place, without allocating. This is the rollback
    /// path of the resilient executor: the destination may carry
    /// arbitrary bit corruption in `val`, `colid` *and* `rowptr` (so no
    /// pattern check is possible), but fault injection never changes
    /// array *lengths*, which is all this requires.
    ///
    /// # Panics
    /// Panics if the dimensions or array lengths differ (use
    /// [`CsrMatrix::assign_from`] for reshaping copies).
    pub fn copy_image_from(&mut self, src: &CsrMatrix) {
        assert_eq!(
            (self.n_rows, self.n_cols),
            (src.n_rows, src.n_cols),
            "copy_image_from: dimension mismatch"
        );
        assert_eq!(
            self.val.len(),
            src.val.len(),
            "copy_image_from: nnz mismatch"
        );
        self.rowptr.copy_from_slice(&src.rowptr);
        self.colid.copy_from_slice(&src.colid);
        self.val.copy_from_slice(&src.val);
    }

    /// `clone_from` that reuses the existing allocations whatever the
    /// shapes: after the call `self == src` bit for bit, and no heap
    /// allocation happened if this matrix's buffers already had enough
    /// capacity. The reshaping entry point behind the per-(n, nnz)
    /// image pooling ([`crate::pool::CsrImagePool`]).
    pub fn assign_from(&mut self, src: &CsrMatrix) {
        self.n_rows = src.n_rows;
        self.n_cols = src.n_cols;
        self.rowptr.clear();
        self.rowptr.extend_from_slice(&src.rowptr);
        self.colid.clear();
        self.colid.extend_from_slice(&src.colid);
        self.val.clear();
        self.val.extend_from_slice(&src.val);
    }

    /// Transpose-vector product `y ← Aᵀ·x` into a caller-provided buffer.
    /// Needed by CGNE/BiCG variants.
    ///
    /// # Panics
    /// Panics if `x.len() != n_rows` or `y.len() != n_cols`.
    pub fn spmv_transpose_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_rows, "spmv_t: x length mismatch");
        assert_eq!(y.len(), self.n_cols, "spmv_t: y length mismatch");
        y.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                y[self.colid[k]] += self.val[k] * xi;
            }
        }
    }

    /// Defensive transpose-vector product `y ← Aᵀ·x` that tolerates
    /// corrupted structure: row ranges follow
    /// [`CsrMatrix::row_range_clamped`] and out-of-range column indices
    /// are skipped. On a well-formed matrix this visits exactly the
    /// entries [`CsrMatrix::spmv_transpose_into`] visits, in the same
    /// order — bit-identical output.
    ///
    /// # Panics
    /// Panics if `x.len() != n_rows` or `y.len() != n_cols` (caller
    /// state, not corruptible matrix data).
    pub fn spmv_transpose_clamped_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_rows, "spmv_t_clamped: x length mismatch");
        assert_eq!(y.len(), self.n_cols, "spmv_t_clamped: y length mismatch");
        y.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            for k in self.row_range_clamped(i) {
                let j = self.colid[k];
                if j < y.len() {
                    y[j] += self.val[k] * xi;
                }
            }
        }
    }

    /// Returns the transposed matrix in CSR form (counting sort over columns).
    pub fn transpose(&self) -> CsrMatrix {
        let nnz = self.nnz();
        let mut rowptr_t = vec![0usize; self.n_cols + 1];
        for &c in &self.colid {
            rowptr_t[c + 1] += 1;
        }
        for i in 0..self.n_cols {
            rowptr_t[i + 1] += rowptr_t[i];
        }
        let mut colid_t = vec![0usize; nnz];
        let mut val_t = vec![0.0; nnz];
        let mut next = rowptr_t.clone();
        for i in 0..self.n_rows {
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                let c = self.colid[k];
                let dst = next[c];
                colid_t[dst] = i;
                val_t[dst] = self.val[k];
                next[c] += 1;
            }
        }
        CsrMatrix {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            rowptr: rowptr_t,
            colid: colid_t,
            val: val_t,
        }
    }

    /// `true` iff `A == Aᵀ` up to absolute tolerance `tol` on every entry.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let t = self.transpose();
        if t.rowptr != self.rowptr {
            // Structures may still match values after reordering; fall back
            // to entrywise comparison.
        }
        for i in 0..self.n_rows {
            for (j, v) in self.row(i) {
                if (v - t.get(i, j)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Extracts the diagonal as a dense vector (zeros where absent).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn diag(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.n_rows];
        self.diag_into(&mut out);
        out
    }

    /// Writes the diagonal into a caller-provided buffer (zeros where
    /// absent) — the allocation-free form of [`CsrMatrix::diag`].
    ///
    /// # Panics
    /// Panics if the matrix is not square or `out.len() != n_rows`.
    pub fn diag_into(&self, out: &mut [f64]) {
        assert!(self.is_square(), "diag: matrix must be square");
        assert_eq!(out.len(), self.n_rows, "diag: output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.get(i, i);
        }
    }

    /// Matrix 1-norm: maximum absolute column sum (eq. 8 of the paper).
    pub fn norm1(&self) -> f64 {
        let mut colsum = vec![0.0_f64; self.n_cols];
        for (k, &c) in self.colid.iter().enumerate() {
            colsum[c] += self.val[k].abs();
        }
        colsum.into_iter().fold(0.0, f64::max)
    }

    /// Matrix ∞-norm: maximum absolute row sum.
    pub fn norm_inf(&self) -> f64 {
        (0..self.n_rows)
            .map(|i| self.row(i).map(|(_, v)| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Per-column plain sums `Σᵢ aᵢⱼ` (the unshifted checksum of eq. 1).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut s = vec![0.0; self.n_cols];
        for (k, &c) in self.colid.iter().enumerate() {
            s[c] += self.val[k];
        }
        s
    }

    /// `true` iff the matrix is strictly diagonally dominant by rows —
    /// the restriction Shantharam et al. need and the paper's shifted
    /// checksums remove.
    pub fn is_strictly_diagonally_dominant(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.n_rows {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (j, v) in self.row(i) {
                if j == i {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            if diag <= off {
                return false;
            }
        }
        true
    }

    /// Maximum number of nonzeros in any column (`n'` in Theorem 2's
    /// error analysis of the norm computation).
    pub fn max_col_nnz(&self) -> usize {
        let mut counts = vec![0usize; self.n_cols];
        for &c in &self.colid {
            counts[c] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }

    /// Converts to a COO (triplet) representation.
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::new(self.n_rows, self.n_cols);
        for i in 0..self.n_rows {
            for (j, v) in self.row(i) {
                coo.push(i, j, v);
            }
        }
        coo
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> CsrMatrix {
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            rowptr: (0..=n).collect(),
            colid: (0..n).collect(),
            val: vec![1.0; n],
        }
    }

    /// Dense row-major rendering (test/debug helper; O(n·m) memory).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.n_cols]; self.n_rows];
        for (i, row) in d.iter_mut().enumerate() {
            for (j, v) in self.row(i) {
                row[j] = v;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3x3 test matrix:
    /// [ 4 1 0 ]
    /// [ 1 3 1 ]
    /// [ 0 1 2 ]
    fn sample() -> CsrMatrix {
        CsrMatrix::new(
            3,
            3,
            vec![0, 2, 5, 7],
            vec![0, 1, 0, 1, 2, 1, 2],
            vec![4.0, 1.0, 1.0, 3.0, 1.0, 1.0, 2.0],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_ok() {
        let m = sample();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.nnz(), 7);
        assert!(m.is_square());
    }

    #[test]
    fn new_rejects_bad_rowptr_len() {
        let e = CsrMatrix::new(3, 3, vec![0, 2, 7], vec![0; 7], vec![0.0; 7]);
        assert!(matches!(e, Err(SparseError::MalformedRowPtr { .. })));
    }

    #[test]
    fn new_rejects_nonzero_first_rowptr() {
        let e = CsrMatrix::new(1, 1, vec![1, 1], vec![], vec![]);
        assert!(matches!(e, Err(SparseError::MalformedRowPtr { .. })));
    }

    #[test]
    fn new_rejects_wrong_last_rowptr() {
        let e = CsrMatrix::new(1, 1, vec![0, 2], vec![0], vec![1.0]);
        assert!(matches!(e, Err(SparseError::MalformedRowPtr { .. })));
    }

    #[test]
    fn new_rejects_decreasing_rowptr() {
        let e = CsrMatrix::new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]);
        assert!(matches!(e, Err(SparseError::MalformedRowPtr { .. })));
    }

    #[test]
    fn new_rejects_colid_out_of_bounds() {
        let e = CsrMatrix::new(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(e, Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn new_rejects_len_mismatch() {
        let e = CsrMatrix::new(1, 2, vec![0, 1], vec![0, 1], vec![1.0]);
        assert!(matches!(e, Err(SparseError::DimensionMismatch { .. })));
    }

    #[test]
    fn validate_detects_corruption() {
        let mut m = sample();
        m.colid_mut()[0] = 99;
        assert!(m.validate().is_err());
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let y = m.spmv(&x);
        assert_eq!(y, vec![6.0, 10.0, 8.0]);
    }

    #[test]
    fn spmv_with_probe_is_bit_identical_to_separate_sweeps() {
        for n in [1, 3, 4, 7, 50] {
            let m = crate::gen::random_spd(n, 0.3, n as u64 + 5).unwrap();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).sin() * 3.0).collect();
            let mut y_ref = vec![0.0; n];
            m.spmv_into(&x, &mut y_ref);
            let want = crate::fused::probe_of(&y_ref);
            let mut y = vec![0.0; n];
            let probe = m.spmv_with_probe_into(&x, &mut y);
            for i in 0..n {
                assert_eq!(y[i].to_bits(), y_ref[i].to_bits(), "n={n} row {i}");
            }
            assert_eq!(probe[0].to_bits(), want[0].to_bits(), "n={n} probe[0]");
            assert_eq!(probe[1].to_bits(), want[1].to_bits(), "n={n} probe[1]");
        }
    }

    #[test]
    fn spmv_clamped_probe_is_bit_identical_to_separate_sweeps() {
        let m = crate::gen::random_spd(41, 0.15, 77).unwrap();
        let x: Vec<f64> = (0..41).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let mut y_ref = vec![0.0; 41];
        m.spmv_clamped_into(&x, &mut y_ref);
        let want = crate::fused::probe_of(&y_ref);
        let mut y = vec![0.0; 41];
        let probe = m.spmv_clamped_probe_into(&x, &mut y);
        assert_eq!(y, y_ref);
        assert_eq!(probe[0].to_bits(), want[0].to_bits());
        assert_eq!(probe[1].to_bits(), want[1].to_bits());
    }

    #[test]
    fn spmv_clamped_probe_survives_corruption() {
        // Corrupt structure and a value: the fused kernel must match the
        // separate clamped product + probe sweeps bit for bit, not panic.
        let mut m = crate::gen::random_spd(30, 0.2, 13).unwrap();
        m.colid_mut()[4] = 999;
        m.rowptr_mut()[7] = usize::MAX / 2;
        m.val_mut()[9] = f64::NAN;
        let x: Vec<f64> = (0..30).map(|i| (i as f64 * 0.37).cos()).collect();
        let mut y_ref = vec![0.0; 30];
        m.spmv_clamped_into(&x, &mut y_ref);
        let want = crate::fused::probe_of(&y_ref);
        let mut y = vec![0.0; 30];
        let probe = m.spmv_clamped_probe_into(&x, &mut y);
        for i in 0..30 {
            assert_eq!(y[i].to_bits(), y_ref[i].to_bits(), "row {i}");
        }
        assert_eq!(probe[0].to_bits(), want[0].to_bits());
        assert_eq!(probe[1].to_bits(), want[1].to_bits());
    }

    #[test]
    fn spmm_with_probe_matches_spmm_and_column_probes() {
        let m = crate::gen::random_spd(33, 0.2, 31).unwrap();
        let k = 5;
        let mut x = MultiVec::zeros(33, k);
        for c in 0..k {
            for (i, v) in x.col_mut(c).iter_mut().enumerate() {
                *v = ((i + 11 * c) as f64 * 0.23).sin();
            }
        }
        let mut y_ref = MultiVec::zeros(33, k);
        m.spmm_into(&x, &mut y_ref);
        let mut y = MultiVec::zeros(33, k);
        let mut probes = vec![[1.0; 2]; k]; // dirty: kernel must reset
        m.spmm_with_probe_into(&x, &mut y, &mut probes);
        for (c, probe) in probes.iter().enumerate() {
            let want = crate::fused::probe_of(y_ref.col(c));
            for i in 0..33 {
                assert_eq!(
                    y.col(c)[i].to_bits(),
                    y_ref.col(c)[i].to_bits(),
                    "col {c} row {i}"
                );
            }
            assert_eq!(probe[0].to_bits(), want[0].to_bits(), "col {c} probe[0]");
            assert_eq!(probe[1].to_bits(), want[1].to_bits(), "col {c} probe[1]");
        }
    }

    #[test]
    fn spmv_identity_is_noop() {
        let id = CsrMatrix::identity(4);
        let x = [1.0, -2.0, 3.5, 0.0];
        assert_eq!(id.spmv(&x), x.to_vec());
    }

    #[test]
    #[should_panic(expected = "x length mismatch")]
    fn spmv_rejects_wrong_x() {
        sample().spmv_into(&[1.0], &mut [0.0; 3]);
    }

    #[test]
    fn spmv_transpose_matches_transpose_spmv() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut y1 = vec![0.0; 3];
        m.spmv_transpose_into(&x, &mut y1);
        let y2 = m.transpose().spmv(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    fn clamped_transpose_matches_plain_on_clean_matrix() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut plain = vec![0.0; 3];
        m.spmv_transpose_into(&x, &mut plain);
        let mut clamped = vec![0.0; 3];
        m.spmv_transpose_clamped_into(&x, &mut clamped);
        assert_eq!(plain, clamped);
    }

    #[test]
    fn clamped_transpose_survives_corruption() {
        let mut m = sample();
        m.rowptr_mut()[1] = usize::MAX; // wild range
        m.colid_mut()[0] = 1 << 40; // wild column
        let x = [1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        m.spmv_transpose_clamped_into(&x, &mut y); // must not panic
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose().to_dense(), m.to_dense());
    }

    #[test]
    fn transpose_rectangular() {
        // 2x3 matrix [1 0 2; 0 3 0]
        let m = CsrMatrix::new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(1, 1), 3.0);
    }

    #[test]
    fn symmetric_sample() {
        assert!(sample().is_symmetric(0.0));
    }

    #[test]
    fn asymmetric_detected() {
        let m = CsrMatrix::new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1.0, 5.0, 1.0]).unwrap();
        assert!(!m.is_symmetric(1e-12));
    }

    #[test]
    fn diag_extraction() {
        assert_eq!(sample().diag(), vec![4.0, 3.0, 2.0]);
    }

    #[test]
    fn norms() {
        let m = sample();
        // column sums of abs: [5, 5, 3] -> norm1 = 5
        assert_eq!(m.norm1(), 5.0);
        // row sums of abs: [5, 5, 3] -> norm_inf = 5
        assert_eq!(m.norm_inf(), 5.0);
    }

    #[test]
    fn column_sums_match() {
        assert_eq!(sample().column_sums(), vec![5.0, 5.0, 3.0]);
    }

    #[test]
    fn diagonal_dominance() {
        assert!(sample().is_strictly_diagonally_dominant());
        // Laplacian-like row sums equal diag -> NOT strict.
        let m = CsrMatrix::new(
            2,
            2,
            vec![0, 2, 4],
            vec![0, 1, 0, 1],
            vec![1.0, -1.0, -1.0, 1.0],
        )
        .unwrap();
        assert!(!m.is_strictly_diagonally_dominant());
    }

    #[test]
    fn get_missing_is_zero() {
        assert_eq!(sample().get(0, 2), 0.0);
    }

    #[test]
    fn density_and_words() {
        let m = sample();
        assert!((m.density() - 7.0 / 9.0).abs() < 1e-15);
        assert_eq!(m.memory_words(), 2 * 7 + 3 + 1);
    }

    #[test]
    fn max_col_nnz_counts() {
        assert_eq!(sample().max_col_nnz(), 3); // column 1 has 3 entries
    }

    #[test]
    fn coo_roundtrip() {
        let m = sample();
        let back = m.to_coo().to_csr();
        assert_eq!(back.to_dense(), m.to_dense());
    }

    #[test]
    fn copy_values_from_restores_values() {
        let pristine = sample();
        let mut live = pristine.clone();
        live.val_mut()[2] = -7.5;
        live.val_mut()[6] = f64::NAN;
        live.copy_values_from(&pristine);
        assert_eq!(live, pristine);
    }

    #[test]
    #[should_panic(expected = "nnz mismatch")]
    fn copy_values_from_rejects_nnz_mismatch() {
        let mut a = sample();
        let b = CsrMatrix::identity(3);
        a.copy_values_from(&b);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn copy_values_from_rejects_dimension_mismatch() {
        let mut a = CsrMatrix::identity(4);
        let b = CsrMatrix::identity(5);
        a.copy_values_from(&b);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sparsity patterns differ")]
    fn copy_values_from_debug_checks_pattern() {
        let mut a = sample();
        a.colid_mut()[0] = 1; // same lengths, different pattern
        let pristine = sample();
        a.copy_values_from(&pristine);
    }

    #[test]
    fn copy_image_from_heals_corrupted_structure() {
        let pristine = sample();
        let mut live = pristine.clone();
        live.rowptr_mut()[1] = usize::MAX;
        live.colid_mut()[3] = 1 << 50;
        live.val_mut()[0] = f64::INFINITY;
        assert!(live.validate().is_err());
        live.copy_image_from(&pristine);
        assert_eq!(live, pristine);
        assert!(live.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "nnz mismatch")]
    fn copy_image_from_rejects_length_mismatch() {
        let mut a = sample();
        let b = CsrMatrix::identity(3);
        a.copy_image_from(&b);
    }

    #[test]
    fn assign_from_reshapes_and_matches_clone() {
        let small = CsrMatrix::identity(2);
        let big = sample();
        let mut buf = small.clone();
        buf.assign_from(&big);
        assert_eq!(buf, big);
        // Shrinking works too and keeps equality exact.
        buf.assign_from(&small);
        assert_eq!(buf, small);
    }

    #[test]
    fn diag_into_matches_diag() {
        let m = sample();
        let mut out = vec![99.0; 3];
        m.diag_into(&mut out);
        assert_eq!(out, m.diag());
        assert_eq!(out, vec![4.0, 3.0, 2.0]);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::new(0, 0, vec![0], vec![], vec![]).unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
        let y = m.spmv(&[]);
        assert!(y.is_empty());
    }

    fn det_x(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.37).sin() * 1.5).collect()
    }

    #[test]
    fn rowband_spmv_is_bit_identical_to_reference() {
        // Sizes straddling the 4-row quads and the 256-row band edge.
        for n in [1usize, 3, 4, 5, 7, 64, 255, 256, 257] {
            let a = crate::gen::random_spd(n, 0.08, n as u64).unwrap();
            let x = det_x(n);
            let want = a.spmv(&x);
            let mut got = vec![0.0; n];
            a.spmv_rowband_into(&x, &mut got);
            assert!(
                want.iter()
                    .zip(&got)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "n = {n}"
            );
            let mut clamped = vec![0.0; n];
            a.spmv_clamped_rowband_into(&x, &mut clamped);
            assert!(
                want.iter()
                    .zip(&clamped)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "clamped, n = {n}"
            );
        }
    }

    #[test]
    fn rowband_clamped_matches_scalar_clamped_on_corruption() {
        let mut a = crate::gen::poisson2d(9).unwrap(); // 81 rows
        a.rowptr_mut()[10] = usize::MAX;
        a.rowptr_mut()[40] = 2; // inverted range
        a.colid_mut()[17] = 1 << 45;
        let x = det_x(81);
        let mut want = vec![0.0; 81];
        a.spmv_clamped_into(&x, &mut want);
        let mut got = vec![0.0; 81];
        a.spmv_clamped_rowband_into(&x, &mut got);
        assert!(want
            .iter()
            .zip(&got)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn spmm_columns_are_bit_identical_to_spmv() {
        let n = 300; // crosses a row-band boundary
        let a = crate::gen::random_spd(n, 0.03, 11).unwrap();
        for k in [1usize, 2, 3, 4, 5, 8] {
            let mut x = MultiVec::zeros(n, k);
            for c in 0..k {
                let xc: Vec<f64> = (0..n).map(|i| ((i + 31 * c) as f64 * 0.29).cos()).collect();
                x.col_mut(c).copy_from_slice(&xc);
            }
            let mut y = MultiVec::zeros(n, k);
            a.spmm_into(&x, &mut y);
            let mut yc = MultiVec::zeros(n, k);
            a.spmm_clamped_into(&x, &mut yc);
            for c in 0..k {
                let want = a.spmv(x.col(c));
                assert!(
                    want.iter()
                        .zip(y.col(c))
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "k = {k}, col {c}"
                );
                assert!(
                    want.iter()
                        .zip(yc.col(c))
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "clamped, k = {k}, col {c}"
                );
            }
        }
    }

    #[test]
    fn spmm_clamped_matches_per_column_clamped_on_corruption() {
        let mut a = crate::gen::poisson2d(8).unwrap(); // 64 rows
        a.rowptr_mut()[5] = usize::MAX;
        a.colid_mut()[9] = 1 << 33;
        let k = 3;
        let mut x = MultiVec::zeros(64, k);
        for c in 0..k {
            let xc: Vec<f64> = (0..64)
                .map(|i| ((i * (c + 2)) as f64 * 0.11).sin())
                .collect();
            x.col_mut(c).copy_from_slice(&xc);
        }
        let mut y = MultiVec::zeros(64, k);
        a.spmm_clamped_into(&x, &mut y);
        for c in 0..k {
            let mut want = vec![0.0; 64];
            a.spmv_clamped_into(x.col(c), &mut want);
            assert!(want
                .iter()
                .zip(y.col(c))
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }
}

//! Compressed sparse row (CSR) matrix.
//!
//! The storage layout is exactly the one Algorithm 2 of the paper protects:
//! three arrays `Val ∈ R^{nnz}`, `Colid ∈ N^{nnz}` and `Rowidx ∈ N^{n+1}`
//! (named `val`, `colid`, `rowptr` here; the paper indexes rows from 1, we
//! index from 0). The fault injector corrupts these arrays directly through
//! the `*_mut` accessors, so the invariants documented on [`CsrMatrix::new`]
//! are *not* guaranteed to hold on a corrupted instance; use
//! [`CsrMatrix::validate`] to re-check them.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::Result;

/// A sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    /// Row pointer array (`Rowidx` in the paper), length `n_rows + 1`.
    rowptr: Vec<usize>,
    /// Column indices (`Colid` in the paper), length `nnz`.
    colid: Vec<usize>,
    /// Nonzero values (`Val` in the paper), length `nnz`.
    val: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix after validating the invariants:
    ///
    /// * `rowptr.len() == n_rows + 1`, `rowptr[0] == 0`,
    ///   `rowptr[n_rows] == val.len()`, monotone non-decreasing;
    /// * `colid.len() == val.len()`;
    /// * every column index is `< n_cols`.
    pub fn new(
        n_rows: usize,
        n_cols: usize,
        rowptr: Vec<usize>,
        colid: Vec<usize>,
        val: Vec<f64>,
    ) -> Result<Self> {
        let m = Self {
            n_rows,
            n_cols,
            rowptr,
            colid,
            val,
        };
        m.validate()?;
        Ok(m)
    }

    /// Builds a CSR matrix without validation. Used by trusted generators
    /// and by the fault injector when *deliberately* producing corrupted
    /// instances.
    pub fn from_parts_unchecked(
        n_rows: usize,
        n_cols: usize,
        rowptr: Vec<usize>,
        colid: Vec<usize>,
        val: Vec<f64>,
    ) -> Self {
        Self {
            n_rows,
            n_cols,
            rowptr,
            colid,
            val,
        }
    }

    /// Re-checks all structural invariants; `Ok(())` iff the instance is a
    /// well-formed CSR matrix.
    pub fn validate(&self) -> Result<()> {
        if self.rowptr.len() != self.n_rows + 1 {
            return Err(SparseError::MalformedRowPtr {
                detail: format!(
                    "rowptr has length {}, expected {}",
                    self.rowptr.len(),
                    self.n_rows + 1
                ),
            });
        }
        if self.rowptr[0] != 0 {
            return Err(SparseError::MalformedRowPtr {
                detail: format!("rowptr[0] = {}, expected 0", self.rowptr[0]),
            });
        }
        if *self.rowptr.last().unwrap() != self.val.len() {
            return Err(SparseError::MalformedRowPtr {
                detail: format!(
                    "rowptr[n] = {}, expected nnz = {}",
                    self.rowptr.last().unwrap(),
                    self.val.len()
                ),
            });
        }
        if self.rowptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::MalformedRowPtr {
                detail: "rowptr is not monotone non-decreasing".into(),
            });
        }
        if self.colid.len() != self.val.len() {
            return Err(SparseError::DimensionMismatch {
                detail: format!(
                    "colid has {} entries, val has {}",
                    self.colid.len(),
                    self.val.len()
                ),
            });
        }
        if let Some(&bad) = self.colid.iter().find(|&&c| c >= self.n_cols) {
            return Err(SparseError::IndexOutOfBounds {
                index: bad,
                bound: self.n_cols,
            });
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of explicitly stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// `true` iff the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.n_rows == self.n_cols
    }

    /// Fill ratio `nnz / (n_rows · n_cols)`.
    pub fn density(&self) -> f64 {
        if self.n_rows == 0 || self.n_cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.n_rows as f64 * self.n_cols as f64)
    }

    /// Number of machine words occupied by the three CSR arrays
    /// (`Val` + `Colid` + `Rowidx`), the quantity the paper's fault model
    /// scales the error rate by.
    pub fn memory_words(&self) -> usize {
        2 * self.nnz() + self.n_rows + 1
    }

    /// Row pointer array (read-only).
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column index array (read-only).
    #[inline]
    pub fn colid(&self) -> &[usize] {
        &self.colid
    }

    /// Value array (read-only).
    #[inline]
    pub fn val(&self) -> &[f64] {
        &self.val
    }

    /// Mutable row pointer array — exposed for fault injection and ABFT
    /// correction only.
    #[inline]
    pub fn rowptr_mut(&mut self) -> &mut [usize] {
        &mut self.rowptr
    }

    /// Mutable column index array — exposed for fault injection and ABFT
    /// correction only.
    #[inline]
    pub fn colid_mut(&mut self) -> &mut [usize] {
        &mut self.colid
    }

    /// Mutable value array — exposed for fault injection and ABFT
    /// correction only.
    #[inline]
    pub fn val_mut(&mut self) -> &mut [f64] {
        &mut self.val
    }

    /// The half-open range of storage positions for row `i`.
    ///
    /// # Panics
    /// Panics if `i >= n_rows`.
    #[inline]
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        self.rowptr[i]..self.rowptr[i + 1]
    }

    /// Iterator over `(col, value)` pairs of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let r = self.row_range(i);
        self.colid[r.clone()]
            .iter()
            .copied()
            .zip(self.val[r].iter().copied())
    }

    /// Value at `(i, j)`, or `0.0` if not stored. Linear in the row length.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row(i)
            .find(|&(c, _)| c == j)
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Sparse matrix–vector product `y ← A·x` into a caller-provided buffer.
    ///
    /// This is the *unprotected* kernel; the ABFT-protected version lives in
    /// `ftcg-abft::spmv` and reproduces this loop with checksum accumulation.
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols` or `y.len() != n_rows`.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.n_rows, "spmv: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                acc += self.val[k] * x[self.colid[k]];
            }
            *yi = acc;
        }
    }

    /// Allocating convenience wrapper around [`CsrMatrix::spmv_into`].
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Storage range of row `i` with the defensive clamping rule: both
    /// bounds clamped to `[0, nnz]`, an inverted range treated as an
    /// empty row. The one canonical clamp shared by the ABFT kernel
    /// (`ftcg-abft`), the pluggable backends (`ftcg-kernels`) and the
    /// defensive BCSR/SELL converters — change it here, never locally.
    #[inline]
    pub fn row_range_clamped(&self, i: usize) -> std::ops::Range<usize> {
        let nnz = self.val.len();
        let start = self.rowptr[i].min(nnz);
        let end = self.rowptr[i + 1].min(nnz);
        if start < end {
            start..end
        } else {
            0..0
        }
    }

    /// Product of row `i` with `x` that tolerates corrupted structure:
    /// the row range follows [`CsrMatrix::row_range_clamped`] and
    /// out-of-range column indices are skipped. On a well-formed matrix
    /// this visits exactly the entries [`CsrMatrix::spmv_into`] visits,
    /// in the same order.
    #[inline]
    pub fn row_product_clamped(&self, x: &[f64], i: usize) -> f64 {
        let mut acc = 0.0;
        for k in self.row_range_clamped(i) {
            let j = self.colid[k];
            if j < x.len() {
                acc += self.val[k] * x[j];
            }
        }
        acc
    }

    /// Defensive `y ← A·x` built on [`CsrMatrix::row_product_clamped`];
    /// never panics on corrupted `rowptr`/`colid` contents.
    ///
    /// # Panics
    /// Panics if `y.len() != n_rows` (the output buffer is caller state,
    /// not corruptible matrix data).
    pub fn spmv_clamped_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(y.len(), self.n_rows, "spmv_clamped: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = self.row_product_clamped(x, i);
        }
    }

    /// Copies the *value* array of `src` into this matrix in place — the
    /// fast restore path when only `Val` may differ. The two matrices
    /// must share one sparsity pattern; the pattern equality itself is a
    /// `debug_assert` (it costs a full `rowptr`/`colid` comparison, too
    /// expensive for a release-mode hot path that upholds the invariant
    /// by construction).
    ///
    /// # Panics
    /// Panics if the dimensions or `nnz` differ; debug-panics if the
    /// sparsity patterns (`rowptr`/`colid`) differ.
    pub fn copy_values_from(&mut self, src: &CsrMatrix) {
        assert_eq!(
            (self.n_rows, self.n_cols),
            (src.n_rows, src.n_cols),
            "copy_values_from: dimension mismatch"
        );
        assert_eq!(
            self.val.len(),
            src.val.len(),
            "copy_values_from: nnz mismatch"
        );
        debug_assert!(
            self.rowptr == src.rowptr && self.colid == src.colid,
            "copy_values_from: sparsity patterns differ"
        );
        self.val.copy_from_slice(&src.val);
    }

    /// Restores the full image of `src` — all three CSR arrays — into
    /// this matrix in place, without allocating. This is the rollback
    /// path of the resilient executor: the destination may carry
    /// arbitrary bit corruption in `val`, `colid` *and* `rowptr` (so no
    /// pattern check is possible), but fault injection never changes
    /// array *lengths*, which is all this requires.
    ///
    /// # Panics
    /// Panics if the dimensions or array lengths differ (use
    /// [`CsrMatrix::assign_from`] for reshaping copies).
    pub fn copy_image_from(&mut self, src: &CsrMatrix) {
        assert_eq!(
            (self.n_rows, self.n_cols),
            (src.n_rows, src.n_cols),
            "copy_image_from: dimension mismatch"
        );
        assert_eq!(
            self.val.len(),
            src.val.len(),
            "copy_image_from: nnz mismatch"
        );
        self.rowptr.copy_from_slice(&src.rowptr);
        self.colid.copy_from_slice(&src.colid);
        self.val.copy_from_slice(&src.val);
    }

    /// `clone_from` that reuses the existing allocations whatever the
    /// shapes: after the call `self == src` bit for bit, and no heap
    /// allocation happened if this matrix's buffers already had enough
    /// capacity. The reshaping entry point behind the per-(n, nnz)
    /// image pooling ([`crate::pool::CsrImagePool`]).
    pub fn assign_from(&mut self, src: &CsrMatrix) {
        self.n_rows = src.n_rows;
        self.n_cols = src.n_cols;
        self.rowptr.clear();
        self.rowptr.extend_from_slice(&src.rowptr);
        self.colid.clear();
        self.colid.extend_from_slice(&src.colid);
        self.val.clear();
        self.val.extend_from_slice(&src.val);
    }

    /// Transpose-vector product `y ← Aᵀ·x` into a caller-provided buffer.
    /// Needed by CGNE/BiCG variants.
    ///
    /// # Panics
    /// Panics if `x.len() != n_rows` or `y.len() != n_cols`.
    pub fn spmv_transpose_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_rows, "spmv_t: x length mismatch");
        assert_eq!(y.len(), self.n_cols, "spmv_t: y length mismatch");
        y.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                y[self.colid[k]] += self.val[k] * xi;
            }
        }
    }

    /// Defensive transpose-vector product `y ← Aᵀ·x` that tolerates
    /// corrupted structure: row ranges follow
    /// [`CsrMatrix::row_range_clamped`] and out-of-range column indices
    /// are skipped. On a well-formed matrix this visits exactly the
    /// entries [`CsrMatrix::spmv_transpose_into`] visits, in the same
    /// order — bit-identical output.
    ///
    /// # Panics
    /// Panics if `x.len() != n_rows` or `y.len() != n_cols` (caller
    /// state, not corruptible matrix data).
    pub fn spmv_transpose_clamped_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_rows, "spmv_t_clamped: x length mismatch");
        assert_eq!(y.len(), self.n_cols, "spmv_t_clamped: y length mismatch");
        y.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            for k in self.row_range_clamped(i) {
                let j = self.colid[k];
                if j < y.len() {
                    y[j] += self.val[k] * xi;
                }
            }
        }
    }

    /// Returns the transposed matrix in CSR form (counting sort over columns).
    pub fn transpose(&self) -> CsrMatrix {
        let nnz = self.nnz();
        let mut rowptr_t = vec![0usize; self.n_cols + 1];
        for &c in &self.colid {
            rowptr_t[c + 1] += 1;
        }
        for i in 0..self.n_cols {
            rowptr_t[i + 1] += rowptr_t[i];
        }
        let mut colid_t = vec![0usize; nnz];
        let mut val_t = vec![0.0; nnz];
        let mut next = rowptr_t.clone();
        for i in 0..self.n_rows {
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                let c = self.colid[k];
                let dst = next[c];
                colid_t[dst] = i;
                val_t[dst] = self.val[k];
                next[c] += 1;
            }
        }
        CsrMatrix {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            rowptr: rowptr_t,
            colid: colid_t,
            val: val_t,
        }
    }

    /// `true` iff `A == Aᵀ` up to absolute tolerance `tol` on every entry.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let t = self.transpose();
        if t.rowptr != self.rowptr {
            // Structures may still match values after reordering; fall back
            // to entrywise comparison.
        }
        for i in 0..self.n_rows {
            for (j, v) in self.row(i) {
                if (v - t.get(i, j)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Extracts the diagonal as a dense vector (zeros where absent).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn diag(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.n_rows];
        self.diag_into(&mut out);
        out
    }

    /// Writes the diagonal into a caller-provided buffer (zeros where
    /// absent) — the allocation-free form of [`CsrMatrix::diag`].
    ///
    /// # Panics
    /// Panics if the matrix is not square or `out.len() != n_rows`.
    pub fn diag_into(&self, out: &mut [f64]) {
        assert!(self.is_square(), "diag: matrix must be square");
        assert_eq!(out.len(), self.n_rows, "diag: output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.get(i, i);
        }
    }

    /// Matrix 1-norm: maximum absolute column sum (eq. 8 of the paper).
    pub fn norm1(&self) -> f64 {
        let mut colsum = vec![0.0_f64; self.n_cols];
        for (k, &c) in self.colid.iter().enumerate() {
            colsum[c] += self.val[k].abs();
        }
        colsum.into_iter().fold(0.0, f64::max)
    }

    /// Matrix ∞-norm: maximum absolute row sum.
    pub fn norm_inf(&self) -> f64 {
        (0..self.n_rows)
            .map(|i| self.row(i).map(|(_, v)| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Per-column plain sums `Σᵢ aᵢⱼ` (the unshifted checksum of eq. 1).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut s = vec![0.0; self.n_cols];
        for (k, &c) in self.colid.iter().enumerate() {
            s[c] += self.val[k];
        }
        s
    }

    /// `true` iff the matrix is strictly diagonally dominant by rows —
    /// the restriction Shantharam et al. need and the paper's shifted
    /// checksums remove.
    pub fn is_strictly_diagonally_dominant(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.n_rows {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (j, v) in self.row(i) {
                if j == i {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            if diag <= off {
                return false;
            }
        }
        true
    }

    /// Maximum number of nonzeros in any column (`n'` in Theorem 2's
    /// error analysis of the norm computation).
    pub fn max_col_nnz(&self) -> usize {
        let mut counts = vec![0usize; self.n_cols];
        for &c in &self.colid {
            counts[c] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }

    /// Converts to a COO (triplet) representation.
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::new(self.n_rows, self.n_cols);
        for i in 0..self.n_rows {
            for (j, v) in self.row(i) {
                coo.push(i, j, v);
            }
        }
        coo
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> CsrMatrix {
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            rowptr: (0..=n).collect(),
            colid: (0..n).collect(),
            val: vec![1.0; n],
        }
    }

    /// Dense row-major rendering (test/debug helper; O(n·m) memory).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.n_cols]; self.n_rows];
        for (i, row) in d.iter_mut().enumerate() {
            for (j, v) in self.row(i) {
                row[j] = v;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3x3 test matrix:
    /// [ 4 1 0 ]
    /// [ 1 3 1 ]
    /// [ 0 1 2 ]
    fn sample() -> CsrMatrix {
        CsrMatrix::new(
            3,
            3,
            vec![0, 2, 5, 7],
            vec![0, 1, 0, 1, 2, 1, 2],
            vec![4.0, 1.0, 1.0, 3.0, 1.0, 1.0, 2.0],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_ok() {
        let m = sample();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.nnz(), 7);
        assert!(m.is_square());
    }

    #[test]
    fn new_rejects_bad_rowptr_len() {
        let e = CsrMatrix::new(3, 3, vec![0, 2, 7], vec![0; 7], vec![0.0; 7]);
        assert!(matches!(e, Err(SparseError::MalformedRowPtr { .. })));
    }

    #[test]
    fn new_rejects_nonzero_first_rowptr() {
        let e = CsrMatrix::new(1, 1, vec![1, 1], vec![], vec![]);
        assert!(matches!(e, Err(SparseError::MalformedRowPtr { .. })));
    }

    #[test]
    fn new_rejects_wrong_last_rowptr() {
        let e = CsrMatrix::new(1, 1, vec![0, 2], vec![0], vec![1.0]);
        assert!(matches!(e, Err(SparseError::MalformedRowPtr { .. })));
    }

    #[test]
    fn new_rejects_decreasing_rowptr() {
        let e = CsrMatrix::new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]);
        assert!(matches!(e, Err(SparseError::MalformedRowPtr { .. })));
    }

    #[test]
    fn new_rejects_colid_out_of_bounds() {
        let e = CsrMatrix::new(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(e, Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn new_rejects_len_mismatch() {
        let e = CsrMatrix::new(1, 2, vec![0, 1], vec![0, 1], vec![1.0]);
        assert!(matches!(e, Err(SparseError::DimensionMismatch { .. })));
    }

    #[test]
    fn validate_detects_corruption() {
        let mut m = sample();
        m.colid_mut()[0] = 99;
        assert!(m.validate().is_err());
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let y = m.spmv(&x);
        assert_eq!(y, vec![6.0, 10.0, 8.0]);
    }

    #[test]
    fn spmv_identity_is_noop() {
        let id = CsrMatrix::identity(4);
        let x = [1.0, -2.0, 3.5, 0.0];
        assert_eq!(id.spmv(&x), x.to_vec());
    }

    #[test]
    #[should_panic(expected = "x length mismatch")]
    fn spmv_rejects_wrong_x() {
        sample().spmv_into(&[1.0], &mut [0.0; 3]);
    }

    #[test]
    fn spmv_transpose_matches_transpose_spmv() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut y1 = vec![0.0; 3];
        m.spmv_transpose_into(&x, &mut y1);
        let y2 = m.transpose().spmv(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    fn clamped_transpose_matches_plain_on_clean_matrix() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut plain = vec![0.0; 3];
        m.spmv_transpose_into(&x, &mut plain);
        let mut clamped = vec![0.0; 3];
        m.spmv_transpose_clamped_into(&x, &mut clamped);
        assert_eq!(plain, clamped);
    }

    #[test]
    fn clamped_transpose_survives_corruption() {
        let mut m = sample();
        m.rowptr_mut()[1] = usize::MAX; // wild range
        m.colid_mut()[0] = 1 << 40; // wild column
        let x = [1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        m.spmv_transpose_clamped_into(&x, &mut y); // must not panic
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose().to_dense(), m.to_dense());
    }

    #[test]
    fn transpose_rectangular() {
        // 2x3 matrix [1 0 2; 0 3 0]
        let m = CsrMatrix::new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(1, 1), 3.0);
    }

    #[test]
    fn symmetric_sample() {
        assert!(sample().is_symmetric(0.0));
    }

    #[test]
    fn asymmetric_detected() {
        let m = CsrMatrix::new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1.0, 5.0, 1.0]).unwrap();
        assert!(!m.is_symmetric(1e-12));
    }

    #[test]
    fn diag_extraction() {
        assert_eq!(sample().diag(), vec![4.0, 3.0, 2.0]);
    }

    #[test]
    fn norms() {
        let m = sample();
        // column sums of abs: [5, 5, 3] -> norm1 = 5
        assert_eq!(m.norm1(), 5.0);
        // row sums of abs: [5, 5, 3] -> norm_inf = 5
        assert_eq!(m.norm_inf(), 5.0);
    }

    #[test]
    fn column_sums_match() {
        assert_eq!(sample().column_sums(), vec![5.0, 5.0, 3.0]);
    }

    #[test]
    fn diagonal_dominance() {
        assert!(sample().is_strictly_diagonally_dominant());
        // Laplacian-like row sums equal diag -> NOT strict.
        let m = CsrMatrix::new(
            2,
            2,
            vec![0, 2, 4],
            vec![0, 1, 0, 1],
            vec![1.0, -1.0, -1.0, 1.0],
        )
        .unwrap();
        assert!(!m.is_strictly_diagonally_dominant());
    }

    #[test]
    fn get_missing_is_zero() {
        assert_eq!(sample().get(0, 2), 0.0);
    }

    #[test]
    fn density_and_words() {
        let m = sample();
        assert!((m.density() - 7.0 / 9.0).abs() < 1e-15);
        assert_eq!(m.memory_words(), 2 * 7 + 3 + 1);
    }

    #[test]
    fn max_col_nnz_counts() {
        assert_eq!(sample().max_col_nnz(), 3); // column 1 has 3 entries
    }

    #[test]
    fn coo_roundtrip() {
        let m = sample();
        let back = m.to_coo().to_csr();
        assert_eq!(back.to_dense(), m.to_dense());
    }

    #[test]
    fn copy_values_from_restores_values() {
        let pristine = sample();
        let mut live = pristine.clone();
        live.val_mut()[2] = -7.5;
        live.val_mut()[6] = f64::NAN;
        live.copy_values_from(&pristine);
        assert_eq!(live, pristine);
    }

    #[test]
    #[should_panic(expected = "nnz mismatch")]
    fn copy_values_from_rejects_nnz_mismatch() {
        let mut a = sample();
        let b = CsrMatrix::identity(3);
        a.copy_values_from(&b);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn copy_values_from_rejects_dimension_mismatch() {
        let mut a = CsrMatrix::identity(4);
        let b = CsrMatrix::identity(5);
        a.copy_values_from(&b);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sparsity patterns differ")]
    fn copy_values_from_debug_checks_pattern() {
        let mut a = sample();
        a.colid_mut()[0] = 1; // same lengths, different pattern
        let pristine = sample();
        a.copy_values_from(&pristine);
    }

    #[test]
    fn copy_image_from_heals_corrupted_structure() {
        let pristine = sample();
        let mut live = pristine.clone();
        live.rowptr_mut()[1] = usize::MAX;
        live.colid_mut()[3] = 1 << 50;
        live.val_mut()[0] = f64::INFINITY;
        assert!(live.validate().is_err());
        live.copy_image_from(&pristine);
        assert_eq!(live, pristine);
        assert!(live.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "nnz mismatch")]
    fn copy_image_from_rejects_length_mismatch() {
        let mut a = sample();
        let b = CsrMatrix::identity(3);
        a.copy_image_from(&b);
    }

    #[test]
    fn assign_from_reshapes_and_matches_clone() {
        let small = CsrMatrix::identity(2);
        let big = sample();
        let mut buf = small.clone();
        buf.assign_from(&big);
        assert_eq!(buf, big);
        // Shrinking works too and keeps equality exact.
        buf.assign_from(&small);
        assert_eq!(buf, small);
    }

    #[test]
    fn diag_into_matches_diag() {
        let m = sample();
        let mut out = vec![99.0; 3];
        m.diag_into(&mut out);
        assert_eq!(out, m.diag());
        assert_eq!(out, vec![4.0, 3.0, 2.0]);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::new(0, 0, vec![0], vec![], vec![]).unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
        let y = m.spmv(&[]);
        assert!(y.is_empty());
    }
}

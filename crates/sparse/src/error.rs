//! Error type shared by all fallible operations in the sparse substrate.

use std::fmt;

/// Errors produced while constructing, converting or reading sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// Matrix dimensions are inconsistent with the data arrays.
    DimensionMismatch {
        /// Human-readable description of what disagreed.
        detail: String,
    },
    /// A column index is out of bounds for the declared number of columns.
    IndexOutOfBounds {
        /// The offending index value.
        index: usize,
        /// The exclusive bound it violated.
        bound: usize,
    },
    /// The row-pointer array is not monotonically non-decreasing or is
    /// malformed (wrong length, wrong first/last entry).
    MalformedRowPtr {
        /// Human-readable description.
        detail: String,
    },
    /// A parse failure while reading an external format such as MatrixMarket.
    Parse {
        /// 1-based line number, when known.
        line: usize,
        /// Human-readable description.
        detail: String,
    },
    /// An I/O failure while reading or writing.
    Io(String),
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows found.
        rows: usize,
        /// Number of columns found.
        cols: usize,
    },
    /// A generator was asked for an impossible configuration.
    InvalidArgument {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            SparseError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (< {bound} required)")
            }
            SparseError::MalformedRowPtr { detail } => {
                write!(f, "malformed row pointer array: {detail}")
            }
            SparseError::Parse { line, detail } => {
                write!(f, "parse error at line {line}: {detail}")
            }
            SparseError::Io(detail) => write!(f, "i/o error: {detail}"),
            SparseError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            SparseError::InvalidArgument { detail } => {
                write!(f, "invalid argument: {detail}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = SparseError::DimensionMismatch {
            detail: "val has 3 entries, colid has 4".into(),
        };
        assert!(e.to_string().contains("dimension mismatch"));
        assert!(e.to_string().contains("val has 3"));
    }

    #[test]
    fn display_out_of_bounds() {
        let e = SparseError::IndexOutOfBounds { index: 7, bound: 5 };
        assert_eq!(e.to_string(), "index 7 out of bounds (< 5 required)");
    }

    #[test]
    fn display_not_square() {
        let e = SparseError::NotSquare { rows: 2, cols: 3 };
        assert!(e.to_string().contains("2x3"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing.mtx");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
        assert!(e.to_string().contains("missing.mtx"));
    }
}

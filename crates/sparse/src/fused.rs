//! One-pass fusions of the per-iteration vector-op patterns.
//!
//! Every dot/axpy/norm in [`vector`](crate::vector) is its own memory
//! sweep; a solver iteration strings several of them over the same few
//! vectors back to back, so the hot path is bandwidth-bound on re-reads
//! of data that was just written. The kernels here combine those sweeps
//! into single passes — one loop body performs the updates *and* feeds
//! the reductions — eliminating whole traversals without changing a
//! single floating-point result.
//!
//! # The order-preservation contract
//!
//! Each fused kernel is **bit-for-bit identical** to the sequence of
//! separate [`vector`](crate::vector) calls it replaces, under three
//! rules the implementations obey and the unit/property suites pin:
//!
//! 1. **Same expressions.** Every element update uses the exact
//!    expression text of the separate kernel it absorbs (`*yi += a *
//!    xi`, `w[i] = a * x[i] + b * y[i]`, …) — never an algebraic
//!    rearrangement, so each element's value is computed by the same
//!    sequence of IEEE-754 operations.
//! 2. **Same chain order.** Every reduction accumulates into its own
//!    scalar in ascending element order, exactly the chain
//!    [`vector::dot`](crate::vector::dot) /
//!    [`vector::sum`](crate::vector::sum) /
//!    [`vector::indexed_sum`](crate::vector::indexed_sum) builds.
//!    Fusing loops interleaves *independent* chains; it never reorders
//!    any chain.
//! 3. **Reads see the updated element.** A reduction over a vector the
//!    same pass updates reads the element *after* its update — the
//!    value the separate follow-up sweep would have read, because the
//!    updates are elementwise (element `i`'s new value never depends on
//!    element `j ≠ i`).
//!
//! Rust's float semantics guarantee the rest: no FMA contraction, no
//! reassociation, so source order *is* machine order.
//!
//! The probe kernels ([`probe_of`], [`probe_of_cols`]) extend the same
//! contract to the ABFT output checksums: `probe[0]` is the chain of
//! [`vector::sum`](crate::vector::sum) and `probe[1]` the chain of
//! [`vector::indexed_sum`](crate::vector::indexed_sum) (the paper's
//! dual checksum weights `1` and `i+1`), so an SpMV that accumulates
//! the probe while writing its outputs in ascending row order produces
//! the bits a separate checksum sweep would.

use crate::multivec::MultiVec;

/// The ABFT output probe of `y`: `[Σᵢ yᵢ, Σᵢ (i+1)·yᵢ]`, both chains in
/// ascending element order — bit-identical to the checksum sweeps the
/// ABFT layer runs over a product output: `y.iter().sum::<f64>()`
/// (= [`vector::sum`](crate::vector::sum)) and the dual-weight chain
/// `y.iter().enumerate().map(|(i, &v)| (i + 1) as f64 * v).sum::<f64>()`.
///
/// Both accumulators start from `-0.0`, the additive identity std's
/// float `Sum` uses (so a leading `-0.0` element survives the chain) —
/// which is why the second chain can differ in the last bit from
/// [`vector::indexed_sum`](crate::vector::indexed_sum) (an explicit
/// loop from `+0.0`) on all-negative-zero prefixes.
#[inline]
pub fn probe_of(y: &[f64]) -> [f64; 2] {
    let mut p0 = -0.0;
    let mut p1 = -0.0;
    for (i, v) in y.iter().enumerate() {
        p0 += v;
        p1 += (i + 1) as f64 * v;
    }
    [p0, p1]
}

/// Column-wise [`probe_of`] over a [`MultiVec`]: `probes[c]` receives
/// the probe of column `c`.
///
/// # Panics
/// Panics if `probes.len() != y.k()`.
#[inline]
pub fn probe_of_cols(y: &MultiVec, probes: &mut [[f64; 2]]) {
    assert_eq!(probes.len(), y.k(), "probe_of_cols: probe count mismatch");
    for (c, p) in probes.iter_mut().enumerate() {
        *p = probe_of(y.col(c));
    }
}

/// Two dot products sharing one sweep: `(Σᵢ a1ᵢ·b1ᵢ, Σᵢ a2ᵢ·b2ᵢ)` —
/// bit-identical to `(vector::dot(a1, b1), vector::dot(a2, b2))`.
///
/// # Panics
/// Panics if the four slices differ in length.
#[inline]
pub fn dot2(a1: &[f64], b1: &[f64], a2: &[f64], b2: &[f64]) -> (f64, f64) {
    assert_eq!(a1.len(), b1.len(), "dot2: length mismatch");
    assert_eq!(a1.len(), a2.len(), "dot2: length mismatch");
    assert_eq!(a2.len(), b2.len(), "dot2: length mismatch");
    let mut acc1 = 0.0;
    let mut acc2 = 0.0;
    for i in 0..a1.len() {
        acc1 += a1[i] * b1[i];
        acc2 += a2[i] * b2[i];
    }
    (acc1, acc2)
}

/// `y ← a·x + y`, returning `Σᵢ wᵢ·yᵢ` over the *updated* `y` — one
/// sweep for `vector::axpy(a, x, y)` followed by `vector::dot(w, y)`.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn axpy_dot(a: f64, x: &[f64], y: &mut [f64], w: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "axpy_dot: length mismatch");
    assert_eq!(w.len(), y.len(), "axpy_dot: weight length mismatch");
    let mut acc = 0.0;
    for i in 0..y.len() {
        y[i] += a * x[i];
        acc += w[i] * y[i];
    }
    acc
}

/// `y ← a·x + y`, returning `(Σᵢ uᵢ·yᵢ, Σᵢ vᵢ·yᵢ)` over the *updated*
/// `y` — one sweep for `vector::axpy(a, x, y)` followed by two dots
/// against `y`.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn axpy_then_dot2(a: f64, x: &[f64], y: &mut [f64], u: &[f64], v: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "axpy_then_dot2: length mismatch");
    assert_eq!(u.len(), y.len(), "axpy_then_dot2: length mismatch");
    assert_eq!(v.len(), y.len(), "axpy_then_dot2: length mismatch");
    let mut acc_u = 0.0;
    let mut acc_v = 0.0;
    for i in 0..y.len() {
        y[i] += a * x[i];
        acc_u += u[i] * y[i];
        acc_v += v[i] * y[i];
    }
    (acc_u, acc_v)
}

/// The CG/CGNE mid-step in one sweep: `x ← a·p + x`, `r ← c·q + r`,
/// returning `Σᵢ rᵢ²` over the updated `r` — bit-identical to
/// `vector::axpy(a, p, x); vector::axpy(c, q, r);
/// vector::norm2_sq(r)`.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn axpy2_norm2_sq(a: f64, p: &[f64], x: &mut [f64], c: f64, q: &[f64], r: &mut [f64]) -> f64 {
    assert_eq!(p.len(), x.len(), "axpy2_norm2_sq: length mismatch");
    assert_eq!(q.len(), r.len(), "axpy2_norm2_sq: length mismatch");
    assert_eq!(x.len(), r.len(), "axpy2_norm2_sq: length mismatch");
    let mut acc = 0.0;
    for i in 0..x.len() {
        x[i] += a * p[i];
        r[i] += c * q[i];
        acc += r[i] * r[i];
    }
    acc
}

/// The PCG mid-step in one sweep: `x ← a·p + x`, `r ← c·q + r`,
/// `zᵢ ← rᵢ·minvᵢ`, returning `Σᵢ rᵢ·zᵢ` over the updated vectors —
/// bit-identical to `vector::axpy(a, p, x); vector::axpy(c, q, r);`
/// the pointwise `z[i] = r[i] * minv[i]` loop; `vector::dot(r, z)`.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn axpy2_precond_dot(
    a: f64,
    p: &[f64],
    x: &mut [f64],
    c: f64,
    q: &[f64],
    r: &mut [f64],
    minv: &[f64],
    z: &mut [f64],
) -> f64 {
    assert_eq!(p.len(), x.len(), "axpy2_precond_dot: length mismatch");
    assert_eq!(q.len(), r.len(), "axpy2_precond_dot: length mismatch");
    assert_eq!(x.len(), r.len(), "axpy2_precond_dot: length mismatch");
    assert_eq!(minv.len(), r.len(), "axpy2_precond_dot: length mismatch");
    assert_eq!(z.len(), r.len(), "axpy2_precond_dot: length mismatch");
    let mut acc = 0.0;
    for i in 0..x.len() {
        x[i] += a * p[i];
        r[i] += c * q[i];
        z[i] = r[i] * minv[i];
        acc += r[i] * z[i];
    }
    acc
}

/// Direction update with residual norm in one sweep: `y ← x + b·y`,
/// returning `Σᵢ vᵢ²` — bit-identical to the `y[i] = x[i] + b * y[i]`
/// loop followed by `vector::norm2_sq(v)` (`v` untouched by the
/// update).
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn xpay_norm2_sq(x: &[f64], b: f64, y: &mut [f64], v: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "xpay_norm2_sq: length mismatch");
    assert_eq!(v.len(), y.len(), "xpay_norm2_sq: length mismatch");
    let mut acc = 0.0;
    for i in 0..y.len() {
        y[i] = x[i] + b * y[i];
        acc += v[i] * v[i];
    }
    acc
}

/// BiCGStab's intermediate residual in one sweep: `sᵢ ← rᵢ − a·vᵢ`,
/// returning `Σᵢ sᵢ²` over the result — bit-identical to the
/// `s[i] = r[i] - a * v[i]` loop followed by `vector::norm2_sq(s)`.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn sub_scaled_norm2_sq(r: &[f64], a: f64, v: &[f64], s: &mut [f64]) -> f64 {
    assert_eq!(r.len(), s.len(), "sub_scaled_norm2_sq: length mismatch");
    assert_eq!(v.len(), s.len(), "sub_scaled_norm2_sq: length mismatch");
    let mut acc = 0.0;
    for i in 0..s.len() {
        s[i] = r[i] - a * v[i];
        acc += s[i] * s[i];
    }
    acc
}

/// BiCGStab's iterate/residual update in one sweep:
/// `xᵢ ← xᵢ + a·pᵢ + w·sᵢ`, `rᵢ ← sᵢ − w·tᵢ`, returning `Σᵢ r̂ᵢ·rᵢ`
/// over the updated `r` — bit-identical to the two update loops
/// followed by `vector::dot(rhat, r)`.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn step_update_dot(
    a: f64,
    p: &[f64],
    w: f64,
    s: &[f64],
    t: &[f64],
    x: &mut [f64],
    r: &mut [f64],
    rhat: &[f64],
) -> f64 {
    assert_eq!(p.len(), x.len(), "step_update_dot: length mismatch");
    assert_eq!(s.len(), x.len(), "step_update_dot: length mismatch");
    assert_eq!(t.len(), r.len(), "step_update_dot: length mismatch");
    assert_eq!(x.len(), r.len(), "step_update_dot: length mismatch");
    assert_eq!(rhat.len(), r.len(), "step_update_dot: length mismatch");
    let mut acc = 0.0;
    for i in 0..x.len() {
        x[i] += a * p[i] + w * s[i];
        r[i] = s[i] - w * t[i];
        acc += rhat[i] * r[i];
    }
    acc
}

/// BiCGStab's direction update in one sweep:
/// `pᵢ ← rᵢ + b·(pᵢ − w·vᵢ)`, returning `Σᵢ rᵢ²` — bit-identical to
/// the `p[i] = r[i] + beta * (p[i] - omega * v[i])` loop followed by
/// `vector::norm2_sq(r)`.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dir_update_norm2_sq(r: &[f64], b: f64, w: f64, v: &[f64], p: &mut [f64]) -> f64 {
    assert_eq!(r.len(), p.len(), "dir_update_norm2_sq: length mismatch");
    assert_eq!(v.len(), p.len(), "dir_update_norm2_sq: length mismatch");
    let mut acc = 0.0;
    for i in 0..p.len() {
        p[i] = r[i] + b * (p[i] - w * v[i]);
        acc += r[i] * r[i];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    /// Deterministic, sign-mixed test vector.
    fn vec_of(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64 + seed as f64 * 0.37) * 0.83).sin() * ((i % 5) as f64 - 2.0))
            .collect()
    }

    fn assert_bits(a: f64, b: f64, what: &str) {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} vs {b}");
    }

    fn assert_bits_vec(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(
                a[i].to_bits(),
                b[i].to_bits(),
                "{what}[{i}]: {} vs {}",
                a[i],
                b[i]
            );
        }
    }

    fn checksum_chains(y: &[f64]) -> [f64; 2] {
        // The exact sweeps the ABFT layer runs over a product output.
        [
            y.iter().sum::<f64>(),
            y.iter()
                .enumerate()
                .map(|(i, &v)| (i + 1) as f64 * v)
                .sum::<f64>(),
        ]
    }

    #[test]
    fn probe_matches_checksum_sweeps() {
        for n in [0, 1, 3, 17, 100] {
            let y = vec_of(n, 1);
            let p = probe_of(&y);
            let want = checksum_chains(&y);
            assert_bits(p[0], want[0], "probe[0]");
            assert_bits(p[0], vector::sum(&y), "probe[0] vs vector::sum");
            assert_bits(p[1], want[1], "probe[1]");
        }
    }

    #[test]
    fn probe_preserves_negative_zero_prefix() {
        // `.sum()` starts from -0.0 so a leading -0.0 survives; the
        // probe must reproduce that identity, where an explicit loop
        // from +0.0 (vector::indexed_sum) would flip the sign bit.
        let y = [-0.0, -0.0];
        let p = probe_of(&y);
        let want = checksum_chains(&y);
        assert_bits(p[0], want[0], "probe[0] -0.0");
        assert_bits(p[1], want[1], "probe[1] -0.0");
        assert_eq!(p[0].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn probe_handles_non_finite_values() {
        let mut y = vec_of(40, 2);
        y[7] = f64::NAN;
        y[19] = f64::INFINITY;
        let p = probe_of(&y);
        let want = checksum_chains(&y);
        assert_bits(p[0], want[0], "probe[0] non-finite");
        assert_bits(p[1], want[1], "probe[1] non-finite");
    }

    #[test]
    fn probe_of_cols_matches_per_column() {
        let n = 23;
        let k = 4;
        let mut y = MultiVec::zeros(n, k);
        for c in 0..k {
            y.col_mut(c).copy_from_slice(&vec_of(n, c as u64 + 3));
        }
        let mut probes = vec![[0.0; 2]; k];
        probe_of_cols(&y, &mut probes);
        for (c, probe) in probes.iter().enumerate() {
            let want = probe_of(y.col(c));
            assert_bits(probe[0], want[0], "col probe[0]");
            assert_bits(probe[1], want[1], "col probe[1]");
        }
    }

    #[test]
    fn dot2_matches_two_dots() {
        let (a1, b1) = (vec_of(61, 4), vec_of(61, 5));
        let (a2, b2) = (vec_of(61, 6), vec_of(61, 7));
        let (d1, d2) = dot2(&a1, &b1, &a2, &b2);
        assert_bits(d1, vector::dot(&a1, &b1), "dot2.0");
        assert_bits(d2, vector::dot(&a2, &b2), "dot2.1");
    }

    #[test]
    fn axpy_dot_matches_axpy_then_dot() {
        let x = vec_of(53, 8);
        let w = vec_of(53, 9);
        let mut y = vec_of(53, 10);
        let mut y_ref = y.clone();
        let got = axpy_dot(-0.625, &x, &mut y, &w);
        vector::axpy(-0.625, &x, &mut y_ref);
        assert_bits_vec(&y, &y_ref, "axpy_dot y");
        assert_bits(got, vector::dot(&w, &y_ref), "axpy_dot acc");
    }

    #[test]
    fn axpy_then_dot2_matches_separate_sweeps() {
        let x = vec_of(47, 11);
        let u = vec_of(47, 12);
        let v = vec_of(47, 13);
        let mut y = vec_of(47, 14);
        let mut y_ref = y.clone();
        let (du, dv) = axpy_then_dot2(1.375, &x, &mut y, &u, &v);
        vector::axpy(1.375, &x, &mut y_ref);
        assert_bits_vec(&y, &y_ref, "axpy_then_dot2 y");
        assert_bits(du, vector::dot(&u, &y_ref), "axpy_then_dot2 u");
        assert_bits(dv, vector::dot(&v, &y_ref), "axpy_then_dot2 v");
    }

    #[test]
    fn axpy2_norm2_sq_matches_cg_mid_step() {
        let p = vec_of(71, 15);
        let q = vec_of(71, 16);
        let mut x = vec_of(71, 17);
        let mut r = vec_of(71, 18);
        let (mut x_ref, mut r_ref) = (x.clone(), r.clone());
        let alpha = 0.8125;
        let got = axpy2_norm2_sq(alpha, &p, &mut x, -alpha, &q, &mut r);
        vector::axpy(alpha, &p, &mut x_ref);
        vector::axpy(-alpha, &q, &mut r_ref);
        assert_bits_vec(&x, &x_ref, "axpy2 x");
        assert_bits_vec(&r, &r_ref, "axpy2 r");
        assert_bits(got, vector::norm2_sq(&r_ref), "axpy2 acc");
    }

    #[test]
    fn axpy2_precond_dot_matches_pcg_mid_step() {
        let p = vec_of(59, 19);
        let q = vec_of(59, 20);
        let minv: Vec<f64> = (0..59).map(|i| 1.0 / (2.0 + (i % 7) as f64)).collect();
        let mut x = vec_of(59, 21);
        let mut r = vec_of(59, 22);
        let mut z = vec![0.0; 59];
        let (mut x_ref, mut r_ref, mut z_ref) = (x.clone(), r.clone(), z.clone());
        let alpha = -1.1875;
        let got = axpy2_precond_dot(alpha, &p, &mut x, -alpha, &q, &mut r, &minv, &mut z);
        vector::axpy(alpha, &p, &mut x_ref);
        vector::axpy(-alpha, &q, &mut r_ref);
        for i in 0..59 {
            z_ref[i] = r_ref[i] * minv[i];
        }
        assert_bits_vec(&x, &x_ref, "pcg x");
        assert_bits_vec(&r, &r_ref, "pcg r");
        assert_bits_vec(&z, &z_ref, "pcg z");
        assert_bits(got, vector::dot(&r_ref, &z_ref), "pcg rz");
    }

    #[test]
    fn xpay_norm2_sq_matches_direction_update() {
        let x = vec_of(37, 23);
        let v = vec_of(37, 24);
        let mut y = vec_of(37, 25);
        let mut y_ref = y.clone();
        let beta = 0.4375;
        let got = xpay_norm2_sq(&x, beta, &mut y, &v);
        for i in 0..37 {
            y_ref[i] = x[i] + beta * y_ref[i];
        }
        assert_bits_vec(&y, &y_ref, "xpay y");
        assert_bits(got, vector::norm2_sq(&v), "xpay acc");
    }

    #[test]
    fn sub_scaled_norm2_sq_matches_bicgstab_s() {
        let r = vec_of(83, 26);
        let v = vec_of(83, 27);
        let mut s = vec![0.0; 83];
        let mut s_ref = vec![0.0; 83];
        let alpha = 2.03125;
        let got = sub_scaled_norm2_sq(&r, alpha, &v, &mut s);
        for i in 0..83 {
            s_ref[i] = r[i] - alpha * v[i];
        }
        assert_bits_vec(&s, &s_ref, "sub_scaled s");
        assert_bits(got, vector::norm2_sq(&s_ref), "sub_scaled acc");
    }

    #[test]
    fn step_update_dot_matches_bicgstab_updates() {
        let p = vec_of(67, 28);
        let s = vec_of(67, 29);
        let t = vec_of(67, 30);
        let rhat = vec_of(67, 31);
        let mut x = vec_of(67, 32);
        let mut r = vec_of(67, 33);
        let (mut x_ref, mut r_ref) = (x.clone(), r.clone());
        let (alpha, omega) = (0.71875, -0.28125);
        let got = step_update_dot(alpha, &p, omega, &s, &t, &mut x, &mut r, &rhat);
        for i in 0..67 {
            x_ref[i] += alpha * p[i] + omega * s[i];
        }
        for i in 0..67 {
            r_ref[i] = s[i] - omega * t[i];
        }
        assert_bits_vec(&x, &x_ref, "step_update x");
        assert_bits_vec(&r, &r_ref, "step_update r");
        assert_bits(got, vector::dot(&rhat, &r_ref), "step_update rho");
    }

    #[test]
    fn dir_update_norm2_sq_matches_bicgstab_p() {
        let r = vec_of(91, 34);
        let v = vec_of(91, 35);
        let mut p = vec_of(91, 36);
        let mut p_ref = p.clone();
        let (beta, omega) = (-0.59375, 1.15625);
        let got = dir_update_norm2_sq(&r, beta, omega, &v, &mut p);
        for i in 0..91 {
            p_ref[i] = r[i] + beta * (p_ref[i] - omega * v[i]);
        }
        assert_bits_vec(&p, &p_ref, "dir_update p");
        assert_bits(got, vector::norm2_sq(&r), "dir_update acc");
    }

    #[test]
    fn empty_vectors_are_fine() {
        assert_eq!(probe_of(&[]), [0.0, 0.0]);
        assert_eq!(dot2(&[], &[], &[], &[]), (0.0, 0.0));
        assert_eq!(axpy_dot(1.0, &[], &mut [], &[]), 0.0);
        assert_eq!(axpy2_norm2_sq(1.0, &[], &mut [], 1.0, &[], &mut []), 0.0);
    }
}

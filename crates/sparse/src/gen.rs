//! Synthetic SPD matrix generators.
//!
//! The paper evaluates on nine SPD matrices from the UFL Sparse Matrix
//! Collection with `n ∈ [17456, 74752]` and density below `1e−2`. Those
//! files are not redistributable inside this repository, so the experiment
//! harness (`ftcg-sim::matrices`) substitutes matrices produced here with
//! the *same order and density*; see DESIGN.md §3 for why that preserves
//! the evaluation. All generators return validated [`CsrMatrix`] values
//! that are symmetric positive definite by construction (strict or weak
//! diagonal dominance with positive diagonal).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::Result;

/// 5-point finite-difference Laplacian on a `k × k` grid (`n = k²`).
///
/// The classic `[-1, -1, 4, -1, -1]` stencil: SPD, weakly diagonally
/// dominant, condition number `O(k²)`.
pub fn poisson2d(k: usize) -> Result<CsrMatrix> {
    if k == 0 {
        return Err(SparseError::InvalidArgument {
            detail: "poisson2d: grid dimension must be positive".into(),
        });
    }
    let n = k * k;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for r in 0..k {
        for c in 0..k {
            let i = r * k + c;
            coo.push(i, i, 4.0);
            if r > 0 {
                coo.push(i, i - k, -1.0);
            }
            if r + 1 < k {
                coo.push(i, i + k, -1.0);
            }
            if c > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if c + 1 < k {
                coo.push(i, i + 1, -1.0);
            }
        }
    }
    Ok(coo.to_csr())
}

/// 7-point finite-difference Laplacian on a `k × k × k` grid (`n = k³`).
pub fn poisson3d(k: usize) -> Result<CsrMatrix> {
    if k == 0 {
        return Err(SparseError::InvalidArgument {
            detail: "poisson3d: grid dimension must be positive".into(),
        });
    }
    let n = k * k * k;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    let idx = |x: usize, y: usize, z: usize| (z * k + y) * k + x;
    for z in 0..k {
        for y in 0..k {
            for x in 0..k {
                let i = idx(x, y, z);
                coo.push(i, i, 6.0);
                if x > 0 {
                    coo.push(i, idx(x - 1, y, z), -1.0);
                }
                if x + 1 < k {
                    coo.push(i, idx(x + 1, y, z), -1.0);
                }
                if y > 0 {
                    coo.push(i, idx(x, y - 1, z), -1.0);
                }
                if y + 1 < k {
                    coo.push(i, idx(x, y + 1, z), -1.0);
                }
                if z > 0 {
                    coo.push(i, idx(x, y, z - 1), -1.0);
                }
                if z + 1 < k {
                    coo.push(i, idx(x, y, z + 1), -1.0);
                }
            }
        }
    }
    Ok(coo.to_csr())
}

/// Symmetric tridiagonal matrix with constant diagonal `d` and
/// off-diagonal `e`. SPD iff `d > 2|e|` (strict) — not enforced, callers
/// choosing eigenvalue edge cases is legitimate.
pub fn tridiagonal(n: usize, d: f64, e: f64) -> Result<CsrMatrix> {
    if n == 0 {
        return Err(SparseError::InvalidArgument {
            detail: "tridiagonal: order must be positive".into(),
        });
    }
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    for i in 0..n {
        coo.push(i, i, d);
        if i > 0 {
            coo.push(i, i - 1, e);
        }
        if i + 1 < n {
            coo.push(i, i + 1, e);
        }
    }
    Ok(coo.to_csr())
}

/// Shifted graph Laplacian `L + σI` of a random undirected multigraph-free
/// graph with `n` vertices and approximately `edges` edges.
///
/// Laplacians have **zero column sums** — the exact case for which the
/// paper introduces shifted checksums (Section 3.2); with `σ = 0` this
/// generator produces a singular matrix useful for exercising that code
/// path, with `σ > 0` an SPD matrix.
pub fn graph_laplacian(n: usize, edges: usize, sigma: f64, seed: u64) -> Result<CsrMatrix> {
    if n < 2 {
        return Err(SparseError::InvalidArgument {
            detail: "graph_laplacian: need at least 2 vertices".into(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj = std::collections::BTreeSet::new();
    // Ring backbone keeps the graph connected, then random chords.
    for v in 0..n {
        let w = (v + 1) % n;
        adj.insert((v.min(w), v.max(w)));
    }
    let mut attempts = 0usize;
    while adj.len() < edges && attempts < 20 * edges {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v {
            adj.insert((u.min(v), u.max(v)));
        }
        attempts += 1;
    }
    let mut degree = vec![0usize; n];
    for &(u, v) in &adj {
        degree[u] += 1;
        degree[v] += 1;
    }
    let mut coo = CooMatrix::with_capacity(n, n, n + 2 * adj.len());
    for (v, &d) in degree.iter().enumerate() {
        coo.push(v, v, d as f64 + sigma);
    }
    for &(u, v) in &adj {
        coo.push(u, v, -1.0);
        coo.push(v, u, -1.0);
    }
    Ok(coo.to_csr())
}

/// Random SPD matrix of order `n` with density approximately `density`.
///
/// Builds a random symmetric off-diagonal pattern, draws values from
/// `U(−1, 0)` and sets each diagonal entry to (row absolute sum + `1.0`),
/// which makes the matrix strictly diagonally dominant with positive
/// diagonal, hence SPD. This is the generator the experiment harness uses
/// to match the UFL matrices' published `n` and density.
pub fn random_spd(n: usize, density: f64, seed: u64) -> Result<CsrMatrix> {
    if n == 0 {
        return Err(SparseError::InvalidArgument {
            detail: "random_spd: order must be positive".into(),
        });
    }
    if !(0.0..=1.0).contains(&density) {
        return Err(SparseError::InvalidArgument {
            detail: format!("random_spd: density {density} outside [0, 1]"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Target nnz including the full diagonal.
    let target_nnz = ((n as f64) * (n as f64) * density).round() as usize;
    let offdiag_pairs = target_nnz.saturating_sub(n) / 2;
    let mut pattern = std::collections::BTreeSet::new();
    let mut attempts = 0usize;
    // Banded bias: most UFL discretization matrices are band-dominated;
    // draw 70% of chords within a band of width max(8, n/64).
    let band = (n / 64).max(8);
    while pattern.len() < offdiag_pairs && attempts < 30 * offdiag_pairs.max(1) {
        attempts += 1;
        let i = rng.random_range(0..n);
        let j = if rng.random::<f64>() < 0.7 {
            let lo = i.saturating_sub(band);
            let hi = (i + band + 1).min(n);
            rng.random_range(lo..hi)
        } else {
            rng.random_range(0..n)
        };
        if i != j {
            pattern.insert((i.min(j), i.max(j)));
        }
    }
    let mut rowsum = vec![0.0_f64; n];
    let mut coo = CooMatrix::with_capacity(n, n, n + 2 * pattern.len());
    for &(i, j) in &pattern {
        let v = -rng.random::<f64>(); // U(-1, 0)
        coo.push(i, j, v);
        coo.push(j, i, v);
        rowsum[i] += v.abs();
        rowsum[j] += v.abs();
    }
    for (i, &s) in rowsum.iter().enumerate() {
        coo.push(i, i, s + 1.0);
    }
    Ok(coo.to_csr())
}

/// Random SPD matrix with a *controlled condition number*: same random
/// symmetric pattern as [`random_spd`], but the diagonal is set to
/// (row absolute sum + `slack`) with
/// `slack = mean_row_sum / cond_target`, so the Gershgorin spectrum is
/// roughly `[slack, 2·max_row_sum]` and CG needs `O(√cond)` iterations.
///
/// The paper's UFL test matrices make CG run for hundreds of iterations;
/// strictly dominant random matrices converge in a couple dozen, which
/// would starve the resilience experiments of faults. This generator is
/// what the experiment harness uses (DESIGN.md §3).
pub fn random_spd_illcond(
    n: usize,
    density: f64,
    cond_target: f64,
    seed: u64,
) -> Result<CsrMatrix> {
    if cond_target.is_nan() || cond_target < 1.0 {
        return Err(SparseError::InvalidArgument {
            detail: format!("cond_target {cond_target} must be >= 1"),
        });
    }
    let base = random_spd(n, density, seed)?;
    // Symmetric diagonal scaling `B = D·A·D` with log-uniform `D`:
    // `d_i = 10^{-u_i·decades/2}`, `u_i ~ U(0,1)`. The base matrix is
    // well-conditioned (strictly dominant), so `cond(B) ≈ cond(D)² ≈
    // cond_target`, and — crucially — the spectrum is *spread* over the
    // whole range rather than having one small outlier (which CG would
    // absorb in a couple of iterations). This mimics the badly scaled
    // discretization matrices of the paper's UFL test set.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51ac_c0de);
    let decades = cond_target.log10();
    let d: Vec<f64> = (0..n)
        .map(|_| 10f64.powf(-rng.random::<f64>() * decades / 2.0))
        .collect();
    let mut coo = CooMatrix::with_capacity(n, n, base.nnz());
    for i in 0..n {
        for (j, v) in base.row(i) {
            coo.push(i, j, d[i] * v * d[j]);
        }
    }
    Ok(coo.to_csr())
}

/// Diagonal matrix with the given entries (utility for preconditioners
/// and tests).
pub fn diagonal(entries: &[f64]) -> CsrMatrix {
    let n = entries.len();
    CsrMatrix::from_parts_unchecked(n, n, (0..=n).collect(), (0..n).collect(), entries.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson2d_structure() {
        let a = poisson2d(3).unwrap();
        assert_eq!(a.n_rows(), 9);
        a.validate().unwrap();
        assert!(a.is_symmetric(0.0));
        // interior point has 5 entries
        assert_eq!(a.row(4).count(), 5);
        assert_eq!(a.get(4, 4), 4.0);
        assert_eq!(a.get(4, 1), -1.0);
    }

    #[test]
    fn poisson2d_rejects_zero() {
        assert!(poisson2d(0).is_err());
    }

    #[test]
    fn poisson3d_structure() {
        let a = poisson3d(3).unwrap();
        assert_eq!(a.n_rows(), 27);
        a.validate().unwrap();
        assert!(a.is_symmetric(0.0));
        // center point (1,1,1) has full 7-point stencil
        #[allow(clippy::identity_op)] // keep the idx(1,1,1) shape readable
        let center = (1 * 3 + 1) * 3 + 1;
        assert_eq!(a.row(center).count(), 7);
        assert_eq!(a.get(center, center), 6.0);
    }

    #[test]
    fn tridiagonal_spd_when_dominant() {
        let a = tridiagonal(10, 4.0, -1.0).unwrap();
        a.validate().unwrap();
        assert!(a.is_strictly_diagonally_dominant());
        assert!(a.is_symmetric(0.0));
        assert_eq!(a.nnz(), 3 * 10 - 2);
    }

    #[test]
    fn laplacian_zero_column_sums() {
        let a = graph_laplacian(20, 40, 0.0, 42).unwrap();
        a.validate().unwrap();
        assert!(a.is_symmetric(0.0));
        for s in a.column_sums() {
            assert!(
                s.abs() < 1e-12,
                "laplacian column sum should be zero, got {s}"
            );
        }
    }

    #[test]
    fn shifted_laplacian_is_dominant() {
        let a = graph_laplacian(20, 40, 1.0, 42).unwrap();
        assert!(a.is_strictly_diagonally_dominant());
    }

    #[test]
    fn random_spd_properties() {
        let a = random_spd(200, 0.02, 7).unwrap();
        a.validate().unwrap();
        assert!(a.is_symmetric(1e-14));
        assert!(a.is_strictly_diagonally_dominant());
        let d = a.density();
        assert!(
            (d - 0.02).abs() < 0.01,
            "density {d} too far from target 0.02"
        );
    }

    #[test]
    fn random_spd_deterministic_by_seed() {
        let a = random_spd(50, 0.05, 123).unwrap();
        let b = random_spd(50, 0.05, 123).unwrap();
        assert_eq!(a, b);
        let c = random_spd(50, 0.05, 124).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn random_spd_rejects_bad_density() {
        assert!(random_spd(10, 1.5, 0).is_err());
        assert!(random_spd(10, -0.1, 0).is_err());
        assert!(random_spd(0, 0.5, 0).is_err());
    }

    #[test]
    fn illcond_is_spd_with_spread_scales() {
        let a = random_spd_illcond(150, 0.05, 1000.0, 3).unwrap();
        a.validate().unwrap();
        assert!(a.is_symmetric(1e-13));
        // PD by congruence (D·SPD·D): probe xᵀAx > 0.
        for s in 0..4u64 {
            let x: Vec<f64> = (0..150)
                .map(|i| ((i as f64 + 0.5) * (s as f64 + 1.1)).sin())
                .collect();
            let q = crate::vector::dot(&x, &a.spmv(&x));
            assert!(q > 0.0, "xᵀAx = {q}");
        }
        // The diagonal spans roughly cond_target in dynamic range.
        let d = a.diag();
        let dmax = d.iter().fold(0.0_f64, |m, &v| m.max(v));
        let dmin = d.iter().fold(f64::INFINITY, |m, &v| m.min(v));
        assert!(
            dmax / dmin > 50.0,
            "diagonal dynamic range {:.1} too narrow",
            dmax / dmin
        );
    }

    #[test]
    fn illcond_rejects_bad_cond() {
        assert!(random_spd_illcond(10, 0.2, 0.5, 0).is_err());
    }

    #[test]
    fn illcond_deterministic() {
        assert_eq!(
            random_spd_illcond(60, 0.08, 500.0, 9).unwrap(),
            random_spd_illcond(60, 0.08, 500.0, 9).unwrap()
        );
    }

    #[test]
    fn diagonal_matrix() {
        let d = diagonal(&[1.0, 2.0, 3.0]);
        d.validate().unwrap();
        assert_eq!(d.spmv(&[1.0, 1.0, 1.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn generators_all_positive_definite_via_cholesky_probe() {
        // Cheap PD probe: xᵀAx > 0 for a handful of random-ish x.
        for a in [
            poisson2d(4).unwrap(),
            poisson3d(2).unwrap(),
            tridiagonal(16, 4.0, -1.0).unwrap(),
            random_spd(64, 0.1, 5).unwrap(),
            graph_laplacian(16, 30, 0.5, 5).unwrap(),
        ] {
            let n = a.n_rows();
            for s in 0..4u64 {
                let x: Vec<f64> = (0..n)
                    .map(|i| ((i as f64 + 1.3) * (s as f64 + 0.7)).sin())
                    .collect();
                let y = a.spmv(&x);
                let q = crate::vector::dot(&x, &y);
                assert!(q > 0.0, "xᵀAx = {q} not positive");
            }
        }
    }
}

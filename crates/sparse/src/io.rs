//! MatrixMarket (`.mtx`) reader and writer.
//!
//! Supports the `matrix coordinate real {general|symmetric}` and
//! `matrix coordinate pattern {general|symmetric}` headers, which cover
//! every matrix in the paper's UFL test set. Pattern matrices get unit
//! values. Comments (`%`) and blank lines are skipped.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::Result;

/// Symmetry qualifier parsed from a MatrixMarket header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Lower triangle stored; mirror on read.
    Symmetric,
}

/// Parses a MatrixMarket stream into CSR.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix> {
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 0usize;

    // --- header ---
    let header = loop {
        match lines.next() {
            Some(l) => {
                lineno += 1;
                let l = l?;
                if !l.trim().is_empty() {
                    break l;
                }
            }
            None => {
                return Err(SparseError::Parse {
                    line: lineno,
                    detail: "empty stream".into(),
                })
            }
        }
    };
    let header_lc = header.to_lowercase();
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 4 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SparseError::Parse {
            line: lineno,
            detail: format!("bad MatrixMarket banner: {header}"),
        });
    }
    if tokens[2] != "coordinate" {
        return Err(SparseError::Parse {
            line: lineno,
            detail: format!("unsupported format {} (only coordinate)", tokens[2]),
        });
    }
    let pattern = match tokens[3] {
        "real" | "integer" => false,
        "pattern" => true,
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                detail: format!("unsupported field type {other}"),
            })
        }
    };
    let symmetry = match tokens.get(4).copied().unwrap_or("general") {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                detail: format!("unsupported symmetry {other}"),
            })
        }
    };

    // --- size line ---
    let size_line = loop {
        match lines.next() {
            Some(l) => {
                lineno += 1;
                let l = l?;
                let t = l.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break l;
            }
            None => {
                return Err(SparseError::Parse {
                    line: lineno,
                    detail: "missing size line".into(),
                })
            }
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>().map_err(|_| SparseError::Parse {
                line: lineno,
                detail: format!("bad size token {t}"),
            })
        })
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: lineno,
            detail: format!("size line needs 3 tokens, got {}", dims.len()),
        });
    }
    let (n_rows, n_cols, nnz_decl) = (dims[0], dims[1], dims[2]);

    // --- entries ---
    let mut coo = CooMatrix::with_capacity(
        n_rows,
        n_cols,
        if symmetry == MmSymmetry::Symmetric {
            2 * nnz_decl
        } else {
            nnz_decl
        },
    );
    let mut seen = 0usize;
    for l in lines {
        lineno += 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize =
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| SparseError::Parse {
                    line: lineno,
                    detail: "bad row index".into(),
                })?;
        let j: usize =
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| SparseError::Parse {
                    line: lineno,
                    detail: "bad column index".into(),
                })?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| SparseError::Parse {
                    line: lineno,
                    detail: "bad value".into(),
                })?
        };
        if i == 0 || j == 0 || i > n_rows || j > n_cols {
            return Err(SparseError::Parse {
                line: lineno,
                detail: format!("coordinate ({i}, {j}) outside 1..={n_rows} x 1..={n_cols}"),
            });
        }
        match symmetry {
            MmSymmetry::General => coo.push(i - 1, j - 1, v),
            MmSymmetry::Symmetric => coo.push_sym(i - 1, j - 1, v),
        }
        seen += 1;
    }
    if seen != nnz_decl {
        return Err(SparseError::Parse {
            line: lineno,
            detail: format!("declared {nnz_decl} entries, found {seen}"),
        });
    }
    Ok(coo.to_csr())
}

/// Reads a MatrixMarket file from disk.
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<CsrMatrix> {
    let f = std::fs::File::open(path)?;
    read_matrix_market(f)
}

/// Writes a matrix in `coordinate real general` format.
pub fn write_matrix_market<W: Write>(mut w: W, a: &CsrMatrix) -> Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by ftcg-sparse")?;
    writeln!(w, "{} {} {}", a.n_rows(), a.n_cols(), a.nnz())?;
    for i in 0..a.n_rows() {
        for (j, v) in a.row(i) {
            writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v)?;
        }
    }
    Ok(())
}

/// Writes a matrix to a `.mtx` file on disk.
pub fn write_matrix_market_file<P: AsRef<Path>>(path: P, a: &CsrMatrix) -> Result<()> {
    let f = std::fs::File::create(path)?;
    write_matrix_market(std::io::BufWriter::new(f), a)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GENERAL: &str = "%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 1 2.0
2 2 3.0
3 3 4.0
1 3 -1.0
";

    const SYMMETRIC: &str = "%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 5.0
2 1 -1.0
";

    const PATTERN: &str = "%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
";

    #[test]
    fn reads_general() {
        let a = read_matrix_market(GENERAL.as_bytes()).unwrap();
        assert_eq!(a.n_rows(), 3);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 2), -1.0);
    }

    #[test]
    fn reads_symmetric_mirrors() {
        let a = read_matrix_market(SYMMETRIC.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(0, 0), 5.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn reads_pattern_as_ones() {
        let a = read_matrix_market(PATTERN.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn rejects_bad_banner() {
        assert!(read_matrix_market("%%NotMM\n1 1 0\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_array_format() {
        let e = read_matrix_market("%%MatrixMarket matrix array real general\n".as_bytes());
        assert!(e.is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let s = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market(s.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_coordinate() {
        let s = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(s.as_bytes()).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(read_matrix_market("".as_bytes()).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let a = crate::gen::random_spd(30, 0.1, 99).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a.to_dense(), b.to_dense());
    }

    #[test]
    fn file_roundtrip() {
        let a = crate::gen::poisson2d(4).unwrap();
        let dir = std::env::temp_dir().join("ftcg_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p2d.mtx");
        write_matrix_market_file(&path, &a).unwrap();
        let b = read_matrix_market_file(&path).unwrap();
        assert_eq!(a.to_dense(), b.to_dense());
        std::fs::remove_file(&path).ok();
    }
}

#![forbid(unsafe_code)]
//! Sparse linear-algebra substrate for the `ftcg` reproduction of
//! Fasi, Robert & Uçar, *"Combining backward and forward recovery to cope
//! with silent errors in iterative solvers"* (PDSEC 2015).
//!
//! This crate provides everything below the resilience layer:
//!
//! * [`CsrMatrix`] — compressed sparse row storage with the exact three-array
//!   layout the paper's ABFT scheme protects (`Val`, `Colid`, `Rowidx`),
//! * [`CooMatrix`] / [`CscMatrix`] — assembly and column-oriented views,
//! * [`BcsrMatrix`] / [`SellCSigma`] — register-blocked and sliced-ELLPACK
//!   storage with exact CSR roundtrips, the formats behind the pluggable
//!   SpMV backends in `ftcg-kernels`,
//! * dense vector kernels ([`vector`]) used by the Conjugate Gradient solver,
//! * one-pass fused sweeps ([`fused`]) combining those kernels bit-identically,
//! * synthetic SPD matrix generators ([`gen`]) matched to the paper's test
//!   set from the UFL collection,
//! * MatrixMarket I/O ([`io`]) so real UFL files can be dropped in,
//! * a crossbeam-based parallel SpMxV ([`parallel`]) mirroring the paper's
//!   row-partitioned MPI discussion on shared memory.
//!
//! The crate is deliberately dependency-light and allocation-conscious: all
//! hot kernels (`spmv_into`, `dot`, `axpy`) write into caller-provided
//! buffers and never allocate.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bcsr;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod error;
pub mod fused;
pub mod gen;
pub mod io;
pub mod multivec;
pub mod parallel;
pub mod pool;
pub mod sell;
pub mod stats;
pub mod vector;

pub use bcsr::BcsrMatrix;
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use multivec::MultiVec;
pub use pool::CsrImagePool;
pub use sell::SellCSigma;

/// Convenience result alias for fallible sparse operations.
pub type Result<T> = std::result::Result<T, SparseError>;

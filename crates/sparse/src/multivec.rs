//! [`MultiVec`] — a column-major block of `k` right-hand-side vectors.
//!
//! The batched (multi-RHS) product `Y ← A·X` amortizes one traversal of
//! the matrix across `k` independent vectors: the dominant cost of a
//! sparse product is streaming the matrix arrays, so `k` solves sharing
//! one traversal approach `k×` the arithmetic for the same memory
//! traffic.
//!
//! ## Determinism contract
//!
//! Every batched product over a `MultiVec` ([`crate::CsrMatrix::spmm_into`],
//! [`crate::CsrMatrix::spmm_clamped_into`], and the SELL/BCSR
//! equivalents) computes **each column independently, as the exact
//! floating-point sum the corresponding single-vector `spmv_into`
//! computes** — same entries, same order, bit for bit. Fusing the
//! traversal reorders only *memory accesses*, never the per-output
//! accumulation chain, so a batched solve is observationally identical
//! to `k` sequential solves. The batched resilient driver in
//! `ftcg-solvers` leans on exactly this guarantee.

/// A dense `n × k` block of `k` column vectors, stored column-major
/// (`data[c*n + i]` is element `i` of column `c`), so each column is a
/// contiguous `&[f64]` interchangeable with a plain vector.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiVec {
    n: usize,
    k: usize,
    data: Vec<f64>,
}

impl MultiVec {
    /// An `n × k` block of zeros.
    pub fn zeros(n: usize, k: usize) -> MultiVec {
        MultiVec {
            n,
            k,
            data: vec![0.0; n * k],
        }
    }

    /// Reshapes in place to `n × k`, reusing the allocation when
    /// capacity suffices (no allocation once grown to the high-water
    /// mark — the batched drivers rely on this for their zero-alloc
    /// steady state). Existing contents are **unspecified** after a
    /// reshape; callers overwrite every column they read.
    pub fn reshape(&mut self, n: usize, k: usize) {
        self.data.resize(n * k, 0.0);
        self.n = n;
        self.k = k;
    }

    /// Rows per column.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of columns.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column `c` as a contiguous slice.
    ///
    /// # Panics
    /// Panics if `c >= k`.
    #[inline]
    pub fn col(&self, c: usize) -> &[f64] {
        assert!(c < self.k, "column {c} out of range (k = {})", self.k);
        &self.data[c * self.n..(c + 1) * self.n]
    }

    /// Column `c` as a mutable contiguous slice.
    ///
    /// # Panics
    /// Panics if `c >= k`.
    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut [f64] {
        assert!(c < self.k, "column {c} out of range (k = {})", self.k);
        &mut self.data[c * self.n..(c + 1) * self.n]
    }

    /// The raw column-major storage (`n * k` values).
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The raw column-major storage, mutable.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_contiguous_and_disjoint() {
        let mut m = MultiVec::zeros(3, 2);
        m.col_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        m.col_mut(1).copy_from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(m.col(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn reshape_reuses_capacity() {
        let mut m = MultiVec::zeros(100, 8);
        let cap = m.data.capacity();
        m.reshape(100, 3);
        m.reshape(100, 8);
        assert_eq!(m.data.capacity(), cap);
        assert_eq!((m.n(), m.k()), (100, 8));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn col_out_of_range_panics() {
        let m = MultiVec::zeros(4, 2);
        let _ = m.col(2);
    }
}

//! Row-partitioned parallel SpMxV.
//!
//! Section 1 of the paper argues that in a message-passing implementation
//! every processor holds a block of rows plus the needed input-vector
//! entries, and that *local* detection/correction implies *global*
//! detection/correction. This module reproduces that structure on shared
//! memory: rows are split into contiguous blocks, one crossbeam scoped
//! thread per block, each writing a disjoint slice of `y`. The ABFT layer
//! builds per-block checksums on top of exactly this partitioning
//! (`ftcg-abft::blocked::BlockProtectedSpmv`).

use crate::csr::CsrMatrix;

/// A contiguous block of rows assigned to one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowBlock {
    /// First row (inclusive).
    pub start: usize,
    /// Last row (exclusive).
    pub end: usize,
}

impl RowBlock {
    /// Number of rows in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` iff the block is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits `n_rows` into at most `n_blocks` contiguous blocks whose stored
/// nonzero counts are approximately balanced (greedy prefix partitioning of
/// the rowptr array — the same heuristic 1-D hypergraph partitioners use as
/// a baseline).
pub fn partition_rows_balanced(a: &CsrMatrix, n_blocks: usize) -> Vec<RowBlock> {
    let n = a.n_rows();
    if n == 0 || n_blocks == 0 {
        return Vec::new();
    }
    let n_blocks = n_blocks.min(n);
    let total = a.nnz();
    let target = (total as f64 / n_blocks as f64).max(1.0);
    let rowptr = a.rowptr();
    let mut blocks = Vec::with_capacity(n_blocks);
    let mut start = 0usize;
    for b in 0..n_blocks {
        if start >= n {
            break;
        }
        if b == n_blocks - 1 {
            blocks.push(RowBlock { start, end: n });
            break;
        }
        let goal = ((b + 1) as f64 * target).round() as usize;
        // First row index whose prefix nnz reaches the goal.
        let mut end = match rowptr.binary_search(&goal) {
            Ok(i) => i,
            Err(i) => i,
        };
        end = end.clamp(start + 1, n - (n_blocks - b - 1));
        blocks.push(RowBlock { start, end });
        start = end;
    }
    blocks
}

/// Parallel `y ← A·x` over the given row blocks using crossbeam scoped
/// threads. Each thread owns a disjoint `&mut` slice of `y`, so the kernel
/// is data-race free by construction.
///
/// # Panics
/// Panics on dimension mismatch or if blocks are not a disjoint,
/// increasing cover of `0..n_rows`.
pub fn spmv_parallel(a: &CsrMatrix, x: &[f64], y: &mut [f64], blocks: &[RowBlock]) {
    assert_eq!(x.len(), a.n_cols(), "spmv_parallel: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "spmv_parallel: y length mismatch");
    validate_blocks(blocks, a.n_rows());
    if blocks.len() <= 1 {
        a.spmv_into(x, y);
        return;
    }
    // Carve y into per-block disjoint mutable slices.
    let mut slices: Vec<&mut [f64]> = Vec::with_capacity(blocks.len());
    let mut rest = y;
    let mut cursor = 0usize;
    for b in blocks {
        let (head, tail) = rest.split_at_mut(b.end - cursor);
        slices.push(head);
        rest = tail;
        cursor = b.end;
    }
    crossbeam::scope(|scope| {
        for (b, ys) in blocks.iter().zip(slices) {
            scope.spawn(move |_| {
                for (local, i) in (b.start..b.end).enumerate() {
                    let mut acc = 0.0;
                    for k in a.row_range(i) {
                        acc += a.val()[k] * x[a.colid()[k]];
                    }
                    ys[local] = acc;
                }
            });
        }
    })
    .expect("spmv_parallel: worker panicked");
}

/// Convenience: partition into `n_threads` balanced blocks and multiply.
///
/// Note this recomputes the partition on **every call** — fine for
/// one-off products, wasteful in a solver loop. Hot paths should build a
/// [`RowPartition`] (or go through `ftcg-kernels`' prepared `csr-par`
/// backend, which caches its blocks at preparation time) and reuse it.
pub fn spmv_parallel_auto(a: &CsrMatrix, x: &[f64], y: &mut [f64], n_threads: usize) {
    let blocks = partition_rows_balanced(a, n_threads.max(1));
    spmv_parallel(a, x, y, &blocks);
}

/// A reusable balanced row partition: computed once, applied to any
/// number of products against matrices with the same row count.
///
/// This is the caching counterpart to [`spmv_parallel_auto`], which
/// re-runs the greedy prefix partitioning on every call.
#[derive(Debug, Clone)]
pub struct RowPartition {
    blocks: Vec<RowBlock>,
    n_rows: usize,
}

impl RowPartition {
    /// Builds a balanced partition of `a`'s rows into at most
    /// `n_threads` blocks (see [`partition_rows_balanced`]).
    pub fn new(a: &CsrMatrix, n_threads: usize) -> RowPartition {
        RowPartition {
            blocks: partition_rows_balanced(a, n_threads.max(1)),
            n_rows: a.n_rows(),
        }
    }

    /// The cached row blocks.
    pub fn blocks(&self) -> &[RowBlock] {
        &self.blocks
    }

    /// Parallel `y ← A·x` over the cached blocks.
    ///
    /// # Panics
    /// Panics if `a` does not have the row count the partition was
    /// built for, or on the usual dimension mismatches.
    pub fn spmv(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            a.n_rows(),
            self.n_rows,
            "RowPartition: matrix row count changed"
        );
        spmv_parallel(a, x, y, &self.blocks);
    }
}

fn validate_blocks(blocks: &[RowBlock], n_rows: usize) {
    let mut cursor = 0usize;
    for b in blocks {
        assert_eq!(b.start, cursor, "blocks must tile rows contiguously");
        assert!(b.end >= b.start, "block end before start");
        cursor = b.end;
    }
    assert_eq!(cursor, n_rows, "blocks must cover all rows");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn partition_covers_all_rows() {
        let a = gen::poisson2d(10).unwrap();
        for nb in [1, 2, 3, 7, 100, 200] {
            let blocks = partition_rows_balanced(&a, nb);
            validate_blocks(&blocks, a.n_rows());
            assert!(blocks.len() <= nb.min(a.n_rows()));
        }
    }

    #[test]
    fn partition_is_roughly_balanced() {
        let a = gen::random_spd(500, 0.02, 3).unwrap();
        let blocks = partition_rows_balanced(&a, 4);
        assert_eq!(blocks.len(), 4);
        let total = a.nnz() as f64;
        for b in &blocks {
            let nnz: usize = (b.start..b.end).map(|i| a.row_range(i).len()).sum();
            let share = nnz as f64 / total;
            assert!(
                share > 0.10 && share < 0.45,
                "block share {share} badly unbalanced"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = gen::random_spd(300, 0.03, 11).unwrap();
        let x: Vec<f64> = (0..a.n_cols()).map(|i| (i as f64 * 0.37).cos()).collect();
        let seq = a.spmv(&x);
        for nt in [1, 2, 3, 4, 8] {
            let mut y = vec![0.0; a.n_rows()];
            spmv_parallel_auto(&a, &x, &mut y, nt);
            assert_eq!(y, seq, "mismatch with {nt} threads");
        }
    }

    #[test]
    fn parallel_on_tiny_matrix() {
        let a = gen::tridiagonal(3, 2.0, -1.0).unwrap();
        let mut y = vec![0.0; 3];
        spmv_parallel_auto(&a, &[1.0, 1.0, 1.0], &mut y, 16);
        assert_eq!(y, a.spmv(&[1.0, 1.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "cover all rows")]
    fn bad_blocks_rejected() {
        let a = gen::tridiagonal(4, 2.0, -1.0).unwrap();
        let mut y = vec![0.0; 4];
        // Missing last row.
        spmv_parallel(
            &a,
            &[0.0; 4],
            &mut y,
            &[RowBlock { start: 0, end: 2 }, RowBlock { start: 2, end: 3 }],
        );
    }

    #[test]
    fn row_partition_reuses_blocks_and_matches() {
        let a = gen::random_spd(200, 0.04, 7).unwrap();
        let part = RowPartition::new(&a, 4);
        assert_eq!(part.blocks(), &partition_rows_balanced(&a, 4)[..]);
        let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.19).sin()).collect();
        let seq = a.spmv(&x);
        let mut y = vec![0.0; 200];
        for _ in 0..3 {
            part.spmv(&a, &x, &mut y);
            assert_eq!(y, seq);
        }
    }

    #[test]
    fn single_block_falls_back() {
        let a = gen::poisson2d(4).unwrap();
        let x = vec![1.0; 16];
        let mut y = vec![0.0; 16];
        spmv_parallel(&a, &x, &mut y, &[RowBlock { start: 0, end: 16 }]);
        assert_eq!(y, a.spmv(&x));
    }
}

//! Pooled matrix images, keyed by shape class `(n_rows, n_cols, nnz)`.
//!
//! The resilient executor works on a *corruptible* copy of the pristine
//! matrix, and a Monte-Carlo campaign takes that copy thousands of
//! times. A [`CsrImagePool`] retains one buffer per shape class so the
//! per-repetition copy is three `copy_from_slice` calls into warm
//! memory instead of a fresh three-array allocation; matrices of equal
//! shape (the overwhelmingly common case — every repetition of a
//! campaign configuration reuses one matrix) hit the same buffer every
//! time.

use crate::csr::CsrMatrix;

/// Shape class a pooled buffer serves.
type ShapeKey = (usize, usize, usize);

fn key_of(m: &CsrMatrix) -> ShapeKey {
    (m.n_rows(), m.n_cols(), m.nnz())
}

/// A pool of retained [`CsrMatrix`] buffers, one per `(n_rows, n_cols,
/// nnz)` shape class (see the module docs).
///
/// The pool is expected to hold a handful of shapes (the distinct
/// matrices of a campaign grid), so lookup is a linear scan — cheaper
/// than hashing at these sizes and allocation-free.
#[derive(Debug, Default)]
pub struct CsrImagePool {
    entries: Vec<(ShapeKey, CsrMatrix)>,
}

impl CsrImagePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of retained shape classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no buffer is retained yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns a mutable image holding a bit-exact copy of `src`,
    /// backed by the retained buffer of `src`'s shape class. Allocates
    /// only the first time a shape class is seen; afterwards the copy
    /// is pure `copy_from_slice` into the warm buffer.
    pub fn checkout(&mut self, src: &CsrMatrix) -> &mut CsrMatrix {
        let key = key_of(src);
        let idx = match self.entries.iter().position(|(k, _)| *k == key) {
            Some(i) => {
                // Same lengths by construction of the key: the cheap
                // fixed-length copy applies.
                self.entries[i].1.copy_image_from(src);
                i
            }
            None => {
                self.entries.push((key, src.clone()));
                self.entries.len() - 1
            }
        };
        &mut self.entries[idx].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn checkout_copies_bit_exactly() {
        let a = gen::random_spd(40, 0.08, 3).unwrap();
        let mut pool = CsrImagePool::new();
        let img = pool.checkout(&a);
        assert_eq!(*img, a);
    }

    #[test]
    fn same_shape_reuses_the_buffer() {
        let a = gen::tridiagonal(30, 4.0, -1.0).unwrap();
        let mut pool = CsrImagePool::new();
        let p0 = pool.checkout(&a).val().as_ptr();
        // Corrupt the image, then check out again: healed, same buffer.
        pool.checkout(&a).val_mut()[0] = f64::NAN;
        let img = pool.checkout(&a);
        assert_eq!(img.val().as_ptr(), p0);
        assert_eq!(*img, a);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn distinct_shapes_get_distinct_buffers() {
        let a = gen::tridiagonal(20, 4.0, -1.0).unwrap();
        let b = gen::tridiagonal(25, 4.0, -1.0).unwrap();
        let mut pool = CsrImagePool::new();
        pool.checkout(&a);
        pool.checkout(&b);
        assert_eq!(pool.len(), 2);
        assert_eq!(*pool.checkout(&a), a);
        assert_eq!(*pool.checkout(&b), b);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn same_shape_different_matrix_still_copies_exactly() {
        // Two guaranteed-equal-shape matrices with *different* sparsity
        // patterns sharing one pooled buffer: the checkout must copy the
        // whole image (pattern included), never just the values.
        let a = CsrMatrix::new(
            3,
            3,
            vec![0, 2, 3, 4],
            vec![0, 1, 1, 2],
            vec![4.0, 1.0, 3.0, 2.0],
        )
        .unwrap();
        let b = CsrMatrix::new(
            3,
            3,
            vec![0, 1, 3, 4],
            vec![0, 0, 1, 2],
            vec![7.0, 5.0, 6.0, 9.0],
        )
        .unwrap();
        assert_eq!(a.nnz(), b.nnz());
        assert_ne!(a.colid(), b.colid());
        let mut pool = CsrImagePool::new();
        pool.checkout(&a);
        let img = pool.checkout(&b);
        assert_eq!(*img, b);
        assert_eq!(pool.len(), 1);
    }
}

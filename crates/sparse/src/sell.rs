//! SELL-C-σ (sliced ELLPACK) storage.
//!
//! Rows are grouped into *chunks* of `C` consecutive storage positions;
//! each chunk is stored column-major (`val[off + j*C + lane]`) and
//! padded to the length of its longest row, so all `C` lanes advance in
//! lockstep — the layout SIMD/GPU SpMV kernels vectorize over. Before
//! chunking, rows are sorted by descending length inside windows of `σ`
//! rows (`σ = 1` disables sorting), which packs similar-length rows into
//! the same chunk and bounds the padding overhead.
//!
//! Per row, entries keep their original CSR order, so each output value
//! is the same floating-point sum [`CsrMatrix::spmv_into`] computes —
//! only the row *visit* order changes, which no output cell observes.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::multivec::MultiVec;
use crate::Result;

/// A sparse matrix in SELL-C-σ format.
#[derive(Debug, Clone, PartialEq)]
pub struct SellCSigma {
    n_rows: usize,
    n_cols: usize,
    /// Chunk height `C`.
    chunk: usize,
    /// Sorting window `σ` (in rows).
    sigma: usize,
    /// `perm[pos]` = original row stored at position `pos`.
    perm: Vec<usize>,
    /// Stored entries per position (true row length, no padding).
    rowlen: Vec<usize>,
    /// Chunk offsets into `colid`/`val`, length `n_chunks + 1`.
    chunkptr: Vec<usize>,
    /// Column indices, column-major per chunk, padding lanes 0.
    colid: Vec<usize>,
    /// Values, column-major per chunk, padding lanes 0.0.
    val: Vec<f64>,
    /// Logical stored entries.
    nnz: usize,
}

impl SellCSigma {
    /// Converts a CSR matrix into SELL-C-σ.
    ///
    /// Returns an error for `chunk == 0` or `sigma == 0`.
    pub fn from_csr(a: &CsrMatrix, chunk: usize, sigma: usize) -> Result<SellCSigma> {
        if chunk == 0 || sigma == 0 {
            return Err(SparseError::DimensionMismatch {
                detail: format!(
                    "SELL-C-σ needs chunk >= 1 and sigma >= 1, got C={chunk} σ={sigma}"
                ),
            });
        }
        Ok(Self::convert(a, chunk, sigma, false))
    }

    /// Defensive conversion for possibly corrupted CSR structure (same
    /// clamping contract as [`crate::bcsr::BcsrMatrix::from_csr_clamped`]).
    ///
    /// # Panics
    /// Panics if `chunk == 0` or `sigma == 0` (trusted callers only).
    pub fn from_csr_clamped(a: &CsrMatrix, chunk: usize, sigma: usize) -> SellCSigma {
        assert!(chunk >= 1 && sigma >= 1, "need C >= 1 and σ >= 1");
        Self::convert(a, chunk, sigma, true)
    }

    fn convert(a: &CsrMatrix, chunk: usize, sigma: usize, clamped: bool) -> SellCSigma {
        let n_rows = a.n_rows();
        let n_cols = a.n_cols();
        // Clamped per-row entry lists (cheap views for the trusted path;
        // the clamp itself is the canonical `row_range_clamped` rule).
        let row_entries = |i: usize| -> (usize, usize) {
            if clamped {
                let r = a.row_range_clamped(i);
                (r.start, r.end)
            } else {
                (a.rowptr()[i], a.rowptr()[i + 1])
            }
        };
        // Row lengths computed once up front: the σ-window sort below
        // evaluates keys repeatedly, and the defensive path's length is
        // an O(row) scan.
        let lens: Vec<usize> = (0..n_rows)
            .map(|i| {
                let (start, end) = row_entries(i);
                if clamped {
                    (start..end).filter(|&k| a.colid()[k] < n_cols).count()
                } else {
                    end - start
                }
            })
            .collect();
        // σ-windowed sort by descending row length (stable: equal-length
        // rows keep their original order — deterministic layout).
        let mut perm: Vec<usize> = (0..n_rows).collect();
        if sigma > 1 {
            for window in perm.chunks_mut(sigma) {
                window.sort_by_key(|&i| std::cmp::Reverse(lens[i]));
            }
        }
        let rowlen: Vec<usize> = perm.iter().map(|&i| lens[i]).collect();
        let n_chunks = n_rows.div_ceil(chunk);
        let mut chunkptr = Vec::with_capacity(n_chunks + 1);
        chunkptr.push(0usize);
        let mut colid = Vec::new();
        let mut val = Vec::new();
        let mut nnz = 0usize;
        for ck in 0..n_chunks {
            let pos_lo = ck * chunk;
            let pos_hi = (pos_lo + chunk).min(n_rows);
            let width = rowlen[pos_lo..pos_hi].iter().copied().max().unwrap_or(0);
            let off = colid.len();
            colid.resize(off + width * chunk, 0usize);
            val.resize(off + width * chunk, 0.0f64);
            for (lane, pos) in (pos_lo..pos_hi).enumerate() {
                let i = perm[pos];
                let (start, end) = row_entries(i);
                let mut j = 0usize;
                for k in start..end {
                    let c = a.colid()[k];
                    if clamped && c >= n_cols {
                        continue;
                    }
                    colid[off + j * chunk + lane] = c;
                    val[off + j * chunk + lane] = a.val()[k];
                    j += 1;
                }
                debug_assert_eq!(j, rowlen[pos]);
                nnz += j;
            }
            chunkptr.push(colid.len());
        }
        SellCSigma {
            n_rows,
            n_cols,
            chunk,
            sigma,
            perm,
            rowlen,
            chunkptr,
            colid,
            val,
            nnz,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Chunk height `C`.
    #[inline]
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Sorting window `σ`.
    #[inline]
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Logical stored entries (excluding padding).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Fraction of allocated lanes that are padding; 0.0 when empty.
    pub fn padding_ratio(&self) -> f64 {
        if self.val.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz as f64 / self.val.len() as f64
    }

    /// `y ← A·x`.
    ///
    /// Chunk heights 4 and 8 dispatch to unrolled fixed-C lane kernels
    /// ([`SellCSigma::spmv_fixed`]); other heights use the generic loop.
    /// Both paths are bit-identical (per-lane ascending-`j` sums).
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols` or `y.len() != n_rows`.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "sell spmv: x length mismatch");
        assert_eq!(y.len(), self.n_rows, "sell spmv: y length mismatch");
        match self.chunk {
            4 => self.spmv_fixed::<4>(x, y),
            8 => self.spmv_fixed::<8>(x, y),
            _ => self.spmv_generic(x, y),
        }
    }

    /// The generic per-lane product loop (any chunk height) — the
    /// reference the fixed-C kernels are verified against.
    fn spmv_generic(&self, x: &[f64], y: &mut [f64]) {
        let c = self.chunk;
        let n_chunks = self.chunkptr.len() - 1;
        for ck in 0..n_chunks {
            let pos_lo = ck * c;
            let pos_hi = (pos_lo + c).min(self.n_rows);
            let off = self.chunkptr[ck];
            for (lane, pos) in (pos_lo..pos_hi).enumerate() {
                let mut acc = 0.0;
                for j in 0..self.rowlen[pos] {
                    let k = off + j * c + lane;
                    acc += self.val[k] * x[self.colid[k]];
                }
                y[self.perm[pos]] = acc;
            }
        }
    }

    /// Unrolled, padding-aware fixed-C lane kernel. Full chunks advance
    /// all `C` lanes in lockstep over the shared prefix `min(rowlen)` —
    /// the column-major layout makes each `j`-step a contiguous load of
    /// `C` values, the shape the autovectorizer turns into SIMD lanes —
    /// then finish each lane's tail separately. Padding lanes
    /// (`j >= rowlen`) are **never multiplied**: under fault injection a
    /// padded `0.0 × corrupted-∞` would manufacture a NaN the reference
    /// kernel does not compute. Per lane the accumulation stays the
    /// ascending-`j` chain of the generic loop, so outputs are
    /// bit-identical.
    fn spmv_fixed<const C: usize>(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(self.chunk, C);
        let n_chunks = self.chunkptr.len() - 1;
        for ck in 0..n_chunks {
            let pos_lo = ck * C;
            let off = self.chunkptr[ck];
            if pos_lo + C <= self.n_rows {
                let rl = &self.rowlen[pos_lo..pos_lo + C];
                let mut m = rl[0];
                for &l in &rl[1..] {
                    m = m.min(l);
                }
                let mut acc = [0.0f64; C];
                // Lockstep section over the shared prefix.
                for j in 0..m {
                    let base = off + j * C;
                    let vs = &self.val[base..base + C];
                    let cs = &self.colid[base..base + C];
                    for lane in 0..C {
                        acc[lane] += vs[lane] * x[cs[lane]];
                    }
                }
                // Guarded tails: each lane finishes its own entries.
                for (lane, a) in acc.iter_mut().enumerate() {
                    for j in m..rl[lane] {
                        let k = off + j * C + lane;
                        *a += self.val[k] * x[self.colid[k]];
                    }
                }
                for (lane, a) in acc.iter().enumerate() {
                    y[self.perm[pos_lo + lane]] = *a;
                }
            } else {
                // Ragged final chunk: generic per-lane loop.
                for (lane, pos) in (pos_lo..self.n_rows).enumerate() {
                    let mut acc = 0.0;
                    for j in 0..self.rowlen[pos] {
                        let k = off + j * C + lane;
                        acc += self.val[k] * x[self.colid[k]];
                    }
                    y[self.perm[pos]] = acc;
                }
            }
        }
    }

    /// Fused multi-RHS product `Y ← A·X`: each lane's entries are
    /// traversed once per group of up to four right-hand sides,
    /// amortizing the SELL array traffic across the block. Every output
    /// column is the exact ascending-`j` per-lane sum
    /// [`SellCSigma::spmv_into`] computes for that column alone — bit
    /// for bit (see the [`MultiVec`] determinism contract).
    ///
    /// # Panics
    /// Panics if `x.n() != n_cols`, `y.n() != n_rows`, or the column
    /// counts differ.
    pub fn spmm_into(&self, x: &MultiVec, y: &mut MultiVec) {
        assert_eq!(x.n(), self.n_cols, "sell spmm: x row count mismatch");
        assert_eq!(y.n(), self.n_rows, "sell spmm: y row count mismatch");
        assert_eq!(x.k(), y.k(), "sell spmm: column count mismatch");
        let (c, nc, nr, k) = (self.chunk, self.n_cols, self.n_rows, x.k());
        let xd = x.data();
        let yd = y.data_mut();
        let n_chunks = self.chunkptr.len() - 1;
        let mut cb = 0;
        while cb < k {
            let w = (k - cb).min(4);
            for ck in 0..n_chunks {
                let pos_lo = ck * c;
                let pos_hi = (pos_lo + c).min(self.n_rows);
                let off = self.chunkptr[ck];
                for (lane, pos) in (pos_lo..pos_hi).enumerate() {
                    let mut acc = [0.0f64; 4];
                    for j in 0..self.rowlen[pos] {
                        let kk = off + j * c + lane;
                        let v = self.val[kk];
                        let col = self.colid[kk];
                        for (ci, a) in acc.iter_mut().enumerate().take(w) {
                            *a += v * xd[(cb + ci) * nc + col];
                        }
                    }
                    let out = self.perm[pos];
                    for (ci, a) in acc.iter().enumerate().take(w) {
                        yd[(cb + ci) * nr + out] = *a;
                    }
                }
            }
            cb += w;
        }
    }

    /// Converts back to CSR, undoing the σ-window permutation. Stored
    /// entries are reproduced exactly (padding dropped).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.n_rows];
        let c = self.chunk;
        let n_chunks = self.chunkptr.len() - 1;
        for ck in 0..n_chunks {
            let pos_lo = ck * c;
            let pos_hi = (pos_lo + c).min(self.n_rows);
            let off = self.chunkptr[ck];
            for (lane, pos) in (pos_lo..pos_hi).enumerate() {
                let row = &mut rows[self.perm[pos]];
                for j in 0..self.rowlen[pos] {
                    let k = off + j * c + lane;
                    row.push((self.colid[k], self.val[k]));
                }
            }
        }
        let mut rowptr = Vec::with_capacity(self.n_rows + 1);
        rowptr.push(0usize);
        let mut colid = Vec::with_capacity(self.nnz);
        let mut val = Vec::with_capacity(self.nnz);
        for row in rows {
            for (j, v) in row {
                colid.push(j);
                val.push(v);
            }
            rowptr.push(colid.len());
        }
        CsrMatrix::from_parts_unchecked(self.n_rows, self.n_cols, rowptr, colid, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_preserves_triplets() {
        let a = gen::random_spd(80, 0.06, 3).unwrap();
        for (c, s) in [(1usize, 1usize), (4, 1), (8, 32), (8, 80), (16, 4)] {
            let sell = SellCSigma::from_csr(&a, c, s).unwrap();
            let back = sell.to_csr();
            assert_eq!(back.rowptr(), a.rowptr(), "C={c} σ={s}");
            assert_eq!(back.colid(), a.colid(), "C={c} σ={s}");
            assert_eq!(back.val(), a.val(), "C={c} σ={s}");
        }
    }

    #[test]
    fn spmv_matches_csr_bitwise() {
        for seed in 0..5u64 {
            let a = gen::random_spd(130, 0.05, seed).unwrap();
            let x: Vec<f64> = (0..130).map(|i| (i as f64 * 0.23).sin()).collect();
            let want = a.spmv(&x);
            for (c, s) in [(4usize, 1usize), (8, 32), (8, 130)] {
                let sell = SellCSigma::from_csr(&a, c, s).unwrap();
                let mut y = vec![0.0; 130];
                sell.spmv_into(&x, &mut y);
                assert_eq!(y, want, "seed {seed} C={c} σ={s}");
            }
        }
    }

    #[test]
    fn sorting_reduces_padding_on_skewed_rows() {
        // Arrow matrix: first row dense, rest sparse — unsorted chunks
        // pad every lane of the first chunk to the dense width.
        let n = 64;
        let mut coo = crate::coo::CooMatrix::new(n, n);
        for j in 0..n {
            coo.push(0, j, 1.0);
            coo.push(j, j, 2.0);
        }
        let a = coo.to_csr();
        let unsorted = SellCSigma::from_csr(&a, 8, 1).unwrap();
        let sorted = SellCSigma::from_csr(&a, 8, n).unwrap();
        assert!(sorted.padding_ratio() <= unsorted.padding_ratio());
        // Both still compute the same product.
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        unsorted.spmv_into(&x, &mut y1);
        sorted.spmv_into(&x, &mut y2);
        assert_eq!(y1, a.spmv(&x));
        assert_eq!(y2, a.spmv(&x));
    }

    #[test]
    fn clamped_conversion_survives_corruption() {
        let mut a = gen::poisson2d(4).unwrap();
        a.rowptr_mut()[3] = usize::MAX;
        a.colid_mut()[7] = 1 << 33;
        let sell = SellCSigma::from_csr_clamped(&a, 4, 16); // must not panic
        let mut y = vec![0.0; 16];
        sell.spmv_into(&[1.0; 16], &mut y);
    }

    #[test]
    fn rejects_bad_parameters() {
        let a = gen::tridiagonal(4, 2.0, -1.0).unwrap();
        assert!(SellCSigma::from_csr(&a, 0, 1).is_err());
        assert!(SellCSigma::from_csr(&a, 4, 0).is_err());
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::new(0, 0, vec![0], vec![], vec![]).unwrap();
        let sell = SellCSigma::from_csr(&a, 8, 32).unwrap();
        assert_eq!(sell.nnz(), 0);
        assert_eq!(sell.padding_ratio(), 0.0);
        let mut y = vec![];
        sell.spmv_into(&[], &mut y);
    }

    #[test]
    fn fixed_c_kernels_are_bit_identical_to_generic() {
        // Sizes exercising full chunks and ragged final chunks for both
        // fixed-C specializations.
        for n in [3usize, 4, 7, 8, 9, 31, 32, 65, 130] {
            let a = gen::random_spd(n, 0.1, n as u64 + 1).unwrap();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.19).cos()).collect();
            for (c, s) in [(4usize, 1usize), (4, 16), (8, 1), (8, 32)] {
                let sell = SellCSigma::from_csr(&a, c, s).unwrap();
                let mut fixed = vec![0.0; n];
                sell.spmv_into(&x, &mut fixed); // dispatches to spmv_fixed
                let mut generic = vec![0.0; n];
                sell.spmv_generic(&x, &mut generic);
                assert!(
                    fixed
                        .iter()
                        .zip(&generic)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "n = {n}, C = {c}, σ = {s}"
                );
            }
        }
    }

    #[test]
    fn fixed_c_never_multiplies_padding() {
        // A padded lane whose x gather would hit an Inf must not leak a
        // NaN through 0.0 × Inf: build a skewed matrix (row 0 long) and
        // poison x everywhere except the columns row 1 references.
        let n = 8;
        let mut coo = crate::coo::CooMatrix::new(n, n);
        for j in 0..n {
            coo.push(0, j, 1.0);
        }
        for i in 1..n {
            coo.push(i, i, 2.0);
        }
        let a = coo.to_csr();
        let sell = SellCSigma::from_csr(&a, 8, 1).unwrap();
        assert!(sell.padding_ratio() > 0.0);
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        sell.spmv_into(&x, &mut y);
        assert!(y.iter().all(|v| v.is_finite()));
        assert_eq!(y[0], n as f64);
    }

    #[test]
    fn spmm_columns_are_bit_identical_to_spmv() {
        let n = 130;
        let a = gen::random_spd(n, 0.05, 3).unwrap();
        for (c, s) in [(4usize, 16usize), (8, 32), (6, 12)] {
            let sell = SellCSigma::from_csr(&a, c, s).unwrap();
            for k in [1usize, 3, 4, 5] {
                let mut x = MultiVec::zeros(n, k);
                for col in 0..k {
                    let xc: Vec<f64> = (0..n)
                        .map(|i| ((i + 7 * col) as f64 * 0.21).sin())
                        .collect();
                    x.col_mut(col).copy_from_slice(&xc);
                }
                let mut y = MultiVec::zeros(n, k);
                sell.spmm_into(&x, &mut y);
                for col in 0..k {
                    let mut want = vec![0.0; n];
                    sell.spmv_into(x.col(col), &mut want);
                    assert!(
                        want.iter()
                            .zip(y.col(col))
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "C = {c}, σ = {s}, k = {k}, col {col}"
                    );
                }
            }
        }
    }
}

//! Structural statistics of sparse matrices, used by the experiment
//! reports (EXPERIMENTS.md lists these for each substituted matrix) and
//! by the fault model (memory footprint).

use crate::csr::CsrMatrix;

/// Summary of a matrix's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Order (rows; the test set is square).
    pub n: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Fill ratio `nnz / n²`.
    pub density: f64,
    /// Minimum row nonzero count.
    pub min_row_nnz: usize,
    /// Maximum row nonzero count.
    pub max_row_nnz: usize,
    /// Mean row nonzero count.
    pub avg_row_nnz: f64,
    /// Half bandwidth `max |i − j|` over stored entries.
    pub bandwidth: usize,
    /// Whether the matrix is symmetric to 1e-12.
    pub symmetric: bool,
    /// Whether strictly diagonally dominant.
    pub diagonally_dominant: bool,
    /// Machine words in the CSR arrays (fault-model `M` contribution).
    pub memory_words: usize,
}

impl MatrixStats {
    /// Computes all statistics in one pass over the structure (plus the
    /// transpose for the symmetry check).
    pub fn compute(a: &CsrMatrix) -> Self {
        let n = a.n_rows();
        let mut min_row = usize::MAX;
        let mut max_row = 0usize;
        let mut bandwidth = 0usize;
        for i in 0..n {
            let cnt = a.row_range(i).len();
            min_row = min_row.min(cnt);
            max_row = max_row.max(cnt);
            for (j, _) in a.row(i) {
                bandwidth = bandwidth.max(i.abs_diff(j));
            }
        }
        if n == 0 {
            min_row = 0;
        }
        Self {
            n,
            nnz: a.nnz(),
            density: a.density(),
            min_row_nnz: min_row,
            max_row_nnz: max_row,
            avg_row_nnz: if n == 0 {
                0.0
            } else {
                a.nnz() as f64 / n as f64
            },
            bandwidth,
            symmetric: a.is_symmetric(1e-12),
            diagonally_dominant: a.is_strictly_diagonally_dominant(),
            memory_words: a.memory_words(),
        }
    }

    /// One-line human-readable rendering for reports.
    pub fn summary_line(&self) -> String {
        format!(
            "n={} nnz={} density={:.3e} rows[{}..{}] avg={:.2} bw={} sym={} dd={}",
            self.n,
            self.nnz,
            self.density,
            self.min_row_nnz,
            self.max_row_nnz,
            self.avg_row_nnz,
            self.bandwidth,
            self.symmetric,
            self.diagonally_dominant
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_poisson2d() {
        let a = gen::poisson2d(5).unwrap();
        let s = MatrixStats::compute(&a);
        assert_eq!(s.n, 25);
        assert_eq!(s.min_row_nnz, 3); // corner
        assert_eq!(s.max_row_nnz, 5); // interior
        assert_eq!(s.bandwidth, 5); // grid stride
        assert!(s.symmetric);
        assert!(!s.diagonally_dominant); // weakly dominant only
        assert_eq!(s.memory_words, 2 * a.nnz() + a.n_rows() + 1);
    }

    #[test]
    fn stats_of_tridiagonal() {
        let a = gen::tridiagonal(8, 4.0, -1.0).unwrap();
        let s = MatrixStats::compute(&a);
        assert_eq!(s.bandwidth, 1);
        assert!(s.diagonally_dominant);
        assert!((s.avg_row_nnz - (3.0 * 8.0 - 2.0) / 8.0).abs() < 1e-12);
    }

    #[test]
    fn summary_line_contains_fields() {
        let a = gen::tridiagonal(4, 3.0, -1.0).unwrap();
        let line = MatrixStats::compute(&a).summary_line();
        assert!(line.contains("n=4"));
        assert!(line.contains("bw=1"));
    }

    #[test]
    fn stats_of_empty() {
        let a = CsrMatrix::new(0, 0, vec![0], vec![], vec![]).unwrap();
        let s = MatrixStats::compute(&a);
        assert_eq!(s.n, 0);
        assert_eq!(s.min_row_nnz, 0);
        assert_eq!(s.avg_row_nnz, 0.0);
    }
}

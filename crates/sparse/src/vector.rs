//! Dense vector kernels used by the iterative solvers.
//!
//! These are the `axpy`, `dot` and norm operations that appear in
//! Algorithm 1 of the paper. They are written against slices so the
//! resilience layer can run them in triple-modular-redundancy mode by
//! simply calling them three times on the same inputs (see
//! `ftcg-abft::tmr`).
//!
//! All kernels are sequential, allocation-free and panic on length
//! mismatch (programming error, not a data error).

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        acc += a * b;
    }
    acc
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean norm `‖x‖₂²` (what CG actually needs for `β`).
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Infinity norm `‖x‖∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// One norm `‖x‖₁`.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// `y ← a·x + y`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// `w ← a·x + b·y`, writing into a separate output buffer.
///
/// # Panics
/// Panics if the three slices differ in length.
#[inline]
pub fn waxpby(a: f64, x: &[f64], b: f64, y: &[f64], w: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "waxpby: length mismatch");
    assert_eq!(x.len(), w.len(), "waxpby: output length mismatch");
    for i in 0..w.len() {
        w[i] = a * x[i] + b * y[i];
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= a;
    }
}

/// `y ← x` (element copy; explicit name for readability at call sites).
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn copy(x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "copy: length mismatch");
    y.copy_from_slice(x);
}

/// `x ← x − y` elementwise.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn sub_assign(x: &mut [f64], y: &[f64]) {
    assert_eq!(x.len(), y.len(), "sub_assign: length mismatch");
    for (a, b) in x.iter_mut().zip(y.iter()) {
        *a -= b;
    }
}

/// Sum of all entries, `Σᵢ xᵢ`. Used by the ABFT output-checksum test.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Weighted sum `Σᵢ wᵢ·xᵢ` with the paper's second weight row `wᵢ = i+1`
/// (1-based positions). Exposed here so both the checksum builder and the
/// TMR layer share one definition.
#[inline]
pub fn indexed_sum(x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (i, v) in x.iter().enumerate() {
        acc += (i + 1) as f64 * v;
    }
    acc
}

/// Maximum absolute componentwise difference `max_i |x_i − y_i|`.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    x.iter()
        .zip(y.iter())
        .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norm2_pythagorean() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn norm2_sq_matches_dot() {
        let x = [1.5, -2.0, 0.25];
        assert_eq!(norm2_sq(&x), dot(&x, &x));
    }

    #[test]
    fn norm_inf_picks_largest_abs() {
        assert_eq!(norm_inf(&[1.0, -7.5, 3.0]), 7.5);
    }

    #[test]
    fn norm1_sums_abs() {
        assert_eq!(norm1(&[1.0, -2.0, 3.0]), 6.0);
    }

    #[test]
    fn axpy_basic() {
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn axpy_zero_alpha_is_identity() {
        let mut y = [4.0, 5.0];
        axpy(0.0, &[9.0, 9.0], &mut y);
        assert_eq!(y, [4.0, 5.0]);
    }

    #[test]
    fn waxpby_combines() {
        let mut w = [0.0; 3];
        waxpby(1.0, &[1.0, 2.0, 3.0], -1.0, &[3.0, 2.0, 1.0], &mut w);
        assert_eq!(w, [-2.0, 0.0, 2.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, [1.0, -2.0]);
    }

    #[test]
    fn copy_duplicates() {
        let mut y = [0.0; 2];
        copy(&[1.0, 2.0], &mut y);
        assert_eq!(y, [1.0, 2.0]);
    }

    #[test]
    fn sub_assign_subtracts() {
        let mut x = [5.0, 5.0];
        sub_assign(&mut x, &[2.0, 3.0]);
        assert_eq!(x, [3.0, 2.0]);
    }

    #[test]
    fn sum_and_indexed_sum() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(sum(&x), 6.0);
        // 1*1 + 2*2 + 3*3 = 14
        assert_eq!(indexed_sum(&x), 14.0);
    }

    #[test]
    fn max_abs_diff_zero_for_equal() {
        let x = [1.0, 2.0];
        assert_eq!(max_abs_diff(&x, &x), 0.0);
        assert_eq!(max_abs_diff(&x, &[1.0, 4.0]), 2.0);
    }
}

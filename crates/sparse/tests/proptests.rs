//! Property-based tests for the sparse substrate.

use ftcg_sparse::{gen, io, vector, BcsrMatrix, CooMatrix, CscMatrix, SellCSigma};
use proptest::prelude::*;

/// Strategy: a random small COO matrix with valid coordinates.
fn coo_strategy(max_n: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    (1..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -100.0..100.0f64), 0..=max_nnz).prop_map(
            move |trips| {
                let mut coo = CooMatrix::new(n, n);
                for (i, j, v) in trips {
                    coo.push(i, j, v);
                }
                coo
            },
        )
    })
}

/// Strategy: a vector of the given length.
fn vec_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0..10.0f64, n..=n)
}

proptest! {
    #[test]
    fn csr_roundtrips_through_coo(coo in coo_strategy(20, 60)) {
        let a = coo.to_csr();
        a.validate().unwrap();
        let back = a.to_coo().to_csr();
        prop_assert_eq!(a.to_dense(), back.to_dense());
    }

    #[test]
    fn csr_roundtrips_through_csc(coo in coo_strategy(20, 60)) {
        let a = coo.to_csr();
        let back = CscMatrix::from_csr(&a).to_csr();
        prop_assert_eq!(a.to_dense(), back.to_dense());
    }

    #[test]
    fn transpose_is_involution(coo in coo_strategy(15, 50)) {
        let a = coo.to_csr();
        prop_assert_eq!(a.transpose().transpose().to_dense(), a.to_dense());
    }

    #[test]
    fn spmv_matches_dense_reference(coo in coo_strategy(12, 40)) {
        let a = coo.to_csr();
        let n = a.n_cols();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) * 0.3).collect();
        let y = a.spmv(&x);
        let dense = a.to_dense();
        for (i, row) in dense.iter().enumerate() {
            let want: f64 = row.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
            prop_assert!((y[i] - want).abs() <= 1e-9 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn spmv_is_linear(coo in coo_strategy(10, 30), alpha in -5.0..5.0f64) {
        let a = coo.to_csr();
        let n = a.n_cols();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let ax = a.spmv(&x);
        let sx: Vec<f64> = x.iter().map(|v| alpha * v).collect();
        let asx = a.spmv(&sx);
        for i in 0..n {
            prop_assert!((asx[i] - alpha * ax[i]).abs() <= 1e-9 * (1.0 + ax[i].abs()));
        }
    }

    #[test]
    fn matrix_market_roundtrip(coo in coo_strategy(15, 40)) {
        let a = coo.to_csr();
        let mut buf = Vec::new();
        io::write_matrix_market(&mut buf, &a).unwrap();
        let b = io::read_matrix_market(buf.as_slice()).unwrap();
        // Values serialized with 17 significant digits: exact for f64.
        prop_assert_eq!(a.to_dense(), b.to_dense());
    }

    #[test]
    fn dot_commutes(x in vec_strategy(16), y in vec_strategy(16)) {
        prop_assert_eq!(vector::dot(&x, &y), vector::dot(&y, &x));
    }

    #[test]
    fn cauchy_schwarz(x in vec_strategy(16), y in vec_strategy(16)) {
        let lhs = vector::dot(&x, &y).abs();
        let rhs = vector::norm2(&x) * vector::norm2(&y);
        prop_assert!(lhs <= rhs * (1.0 + 1e-12) + 1e-12);
    }

    #[test]
    fn triangle_inequality(x in vec_strategy(16), y in vec_strategy(16)) {
        let s: Vec<f64> = x.iter().zip(y.iter()).map(|(a, b)| a + b).collect();
        prop_assert!(vector::norm2(&s) <= vector::norm2(&x) + vector::norm2(&y) + 1e-12);
    }

    #[test]
    fn axpy_matches_definition(a in -3.0..3.0f64, x in vec_strategy(12), y in vec_strategy(12)) {
        let mut z = y.clone();
        vector::axpy(a, &x, &mut z);
        for i in 0..12 {
            prop_assert!((z[i] - (a * x[i] + y[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn random_spd_always_valid(n in 10usize..120, density in 0.01..0.2f64, seed in 0u64..1000) {
        let a = gen::random_spd(n, density, seed).unwrap();
        a.validate().unwrap();
        prop_assert!(a.is_symmetric(1e-13));
        prop_assert!(a.is_strictly_diagonally_dominant());
    }

    #[test]
    fn norm1_is_max_column_sum(coo in coo_strategy(10, 30)) {
        let a = coo.to_csr();
        let dense = a.to_dense();
        let mut want = 0.0_f64;
        for j in 0..a.n_cols() {
            let s: f64 = dense.iter().map(|row| row[j].abs()).sum();
            want = want.max(s);
        }
        prop_assert!((a.norm1() - want).abs() <= 1e-9 * (1.0 + want));
    }

    #[test]
    fn parallel_spmv_equals_sequential(coo in coo_strategy(40, 200), nt in 1usize..6) {
        let a = coo.to_csr();
        let x: Vec<f64> = (0..a.n_cols()).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let seq = a.spmv(&x);
        let mut par = vec![0.0; a.n_rows()];
        ftcg_sparse::parallel::spmv_parallel_auto(&a, &x, &mut par, nt);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn partition_tiles_rows_exactly(coo in coo_strategy(60, 300), nb in 1usize..12) {
        let a = coo.to_csr();
        let blocks = ftcg_sparse::parallel::partition_rows_balanced(&a, nb);
        // Never more blocks than requested (or than rows).
        prop_assert!(blocks.len() <= nb.min(a.n_rows()));
        // Non-overlapping, increasing, exact cover of [0, n_rows).
        let mut cursor = 0usize;
        for b in &blocks {
            prop_assert_eq!(b.start, cursor, "gap or overlap at row {}", cursor);
            prop_assert!(b.end > b.start, "empty block");
            cursor = b.end;
        }
        prop_assert_eq!(cursor, a.n_rows());
    }

    #[test]
    fn bcsr_roundtrip_preserves_triplets(
        n in 10usize..150, density in 0.01..0.15f64, seed in 0u64..500, b in 1usize..=4
    ) {
        // Generator matrices are duplicate-free and column-sorted, so the
        // roundtrip must reproduce the (row, col, value) arrays exactly.
        let a = gen::random_spd(n, density, seed).unwrap();
        let back = BcsrMatrix::from_csr(&a, b).unwrap().to_csr();
        prop_assert_eq!(back.rowptr(), a.rowptr());
        prop_assert_eq!(back.colid(), a.colid());
        prop_assert_eq!(back.val(), a.val());
    }

    #[test]
    fn sell_roundtrip_preserves_triplets(
        n in 10usize..150, density in 0.01..0.15f64, seed in 0u64..500,
        c in 1usize..12, sigma in 1usize..40
    ) {
        let a = gen::random_spd(n, density, seed).unwrap();
        let back = SellCSigma::from_csr(&a, c, sigma).unwrap().to_csr();
        prop_assert_eq!(back.rowptr(), a.rowptr());
        prop_assert_eq!(back.colid(), a.colid());
        prop_assert_eq!(back.val(), a.val());
    }

    #[test]
    fn blocked_formats_spmv_match_csr(coo in coo_strategy(40, 150), b in 1usize..=4, c in 1usize..10) {
        // Arbitrary assembled matrices (possibly duplicate entries, any
        // column order): products must agree with the CSR reference up
        // to summation-order rounding.
        let a = coo.to_csr();
        let x: Vec<f64> = (0..a.n_cols()).map(|i| ((i as f64) * 0.37).cos() * 3.0).collect();
        let want = a.spmv(&x);
        let scale: f64 = 1.0 + want.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let blocked = BcsrMatrix::from_csr(&a, b).unwrap();
        let mut y = vec![0.0; a.n_rows()];
        blocked.spmv_into(&x, &mut y);
        for i in 0..a.n_rows() {
            prop_assert!((y[i] - want[i]).abs() <= 1e-12 * scale, "bcsr row {}", i);
        }
        let sell = SellCSigma::from_csr(&a, c, 4 * c).unwrap();
        sell.spmv_into(&x, &mut y);
        for i in 0..a.n_rows() {
            prop_assert!((y[i] - want[i]).abs() <= 1e-12 * scale, "sell row {}", i);
        }
    }

    #[test]
    fn partition_balances_nnz(n in 50usize..250, density in 0.02..0.1f64, seed in 0u64..200, nb in 2usize..9) {
        // Balance is only meaningful on matrices with work to split:
        // random SPD keeps every row non-empty (diagonal) and roughly
        // uniform, where the greedy prefix partitioning has slack
        // max_row_nnz per block. Bound each block by the ideal share
        // plus that slack (and require it not to be trivially empty).
        let a = gen::random_spd(n, density, seed).unwrap();
        let blocks = ftcg_sparse::parallel::partition_rows_balanced(&a, nb);
        let total = a.nnz();
        let ideal = total as f64 / blocks.len() as f64;
        let max_row: usize = (0..a.n_rows()).map(|i| a.row_range(i).len()).max().unwrap_or(0);
        for b in &blocks {
            let nnz: usize = (b.start..b.end).map(|i| a.row_range(i).len()).sum();
            prop_assert!(
                (nnz as f64) <= ideal + 2.0 * max_row as f64 + 1.0,
                "block [{}, {}) holds {} nnz, ideal {:.1} + slack {}",
                b.start, b.end, nnz, ideal, max_row
            );
        }
    }
}

//! The [`ActiveRecorder`]: a per-worker, pre-allocated recorder.
//!
//! One recorder lives in each worker's job workspace. All storage —
//! per-phase counters, per-phase histograms, the bounded event ring —
//! is allocated at construction; recording is array arithmetic and a
//! capacity-guarded `Vec::push`, so the allocation gate
//! (`crates/solvers/tests/alloc_gate.rs`) passes with recording on.
//! Between jobs the campaign layer calls [`drain`](ActiveRecorder::drain)
//! (which *does* allocate, outside the solve) and gets back a
//! [`JobTelemetry`] snapshot keyed by job index.

use crate::event::{Event, EventKind};
use crate::hist::DurationHist;
use crate::recorder::{Phase, Recorder, Stamp};

/// Default event-ring capacity. Fixed (not tunable per run) so the
/// drop boundary — and therefore the drained trace — is deterministic
/// for a given campaign no matter how it is executed.
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

/// One job's wall-clock execution window, relative to the run's start.
///
/// Spans are *not* recorded by the solve hot path — the campaign layer
/// stamps them around the whole job after draining the recorder — and
/// they ride the non-deterministic metrics sidecar only (never the
/// trace), so the determinism contract is untouched. They exist so the
/// Perfetto export can reconstruct per-worker timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpan {
    /// Worker-thread ordinal that executed the job (0-based).
    pub worker: u64,
    /// Nanoseconds from run start to job start.
    pub start_ns: u64,
    /// Nanoseconds from run start to job completion.
    pub end_ns: u64,
}

/// Everything one job recorded, drained out of the worker's recorder
/// after the solve completes.
#[derive(Debug, Clone)]
pub struct JobTelemetry {
    /// The global job index (configuration-major: `config * reps + rep`).
    pub job: usize,
    /// The drained event ring, in emission order. The position of an
    /// event in this vector is its `seq` key in the trace.
    pub events: Vec<Event>,
    /// Events the bounded ring had to drop (excess over capacity).
    pub dropped: u64,
    /// Per-phase accumulated wall time, indexed by [`Phase::index`].
    pub phase_ns: [u64; Phase::COUNT],
    /// Per-phase call counts, indexed by [`Phase::index`].
    pub phase_calls: [u64; Phase::COUNT],
    /// Per-kind event counts, indexed by [`EventKind::index`]. Counts
    /// *emitted* events, including any the ring dropped.
    pub event_counts: [u64; EventKind::COUNT],
    /// Per-phase duration histograms, indexed by [`Phase::index`].
    pub hist: [DurationHist; Phase::COUNT],
    /// Wall-clock execution window, stamped by the campaign layer
    /// after the drain (never by the recorder itself). `None` for
    /// drains that never pass through a campaign run.
    pub span: Option<JobSpan>,
}

/// A pre-allocated per-worker recorder (see the module docs).
#[derive(Debug, Clone)]
pub struct ActiveRecorder {
    phase_ns: [u64; Phase::COUNT],
    phase_calls: [u64; Phase::COUNT],
    hist: [DurationHist; Phase::COUNT],
    event_counts: [u64; EventKind::COUNT],
    ring: Vec<Event>,
    dropped: u64,
}

impl Default for ActiveRecorder {
    fn default() -> Self {
        ActiveRecorder::new()
    }
}

impl ActiveRecorder {
    /// A recorder with the default ring capacity.
    pub fn new() -> ActiveRecorder {
        ActiveRecorder::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A recorder with a custom ring capacity (minimum 2: one slot is
    /// reserved for the final [`finish_job`](Self::finish_job) event so
    /// a job's trace block always ends with `job_finish` even when the
    /// ring overflowed).
    pub fn with_capacity(capacity: usize) -> ActiveRecorder {
        ActiveRecorder {
            phase_ns: [0; Phase::COUNT],
            phase_calls: [0; Phase::COUNT],
            hist: [DurationHist::new(); Phase::COUNT],
            event_counts: [0; EventKind::COUNT],
            ring: Vec::with_capacity(capacity.max(2)),
            dropped: 0,
        }
    }

    /// Clears all recorded state, keeping the ring's allocation.
    pub fn reset(&mut self) {
        self.phase_ns = [0; Phase::COUNT];
        self.phase_calls = [0; Phase::COUNT];
        self.hist = [DurationHist::new(); Phase::COUNT];
        self.event_counts = [0; EventKind::COUNT];
        self.ring.clear();
        self.dropped = 0;
    }

    /// Events the ring has dropped since the last reset.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Emits the terminal `job_finish` event into the reserved last
    /// ring slot — it is recorded even when normal events overflowed,
    /// so every complete trace block ends with `job_finish`.
    pub fn finish_job(&mut self, executed: u64, productive: u64, converged: bool) {
        let ev = Event::job_finish(executed, productive, converged, self.dropped);
        self.event_counts[ev.kind.index()] += 1;
        debug_assert!(self.ring.len() < self.ring.capacity());
        if self.ring.len() < self.ring.capacity() {
            self.ring.push(ev);
        }
    }

    /// Accumulated time for one phase since the last reset.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.index()]
    }

    /// The duration histogram for one phase.
    pub fn histogram(&self, phase: Phase) -> &DurationHist {
        &self.hist[phase.index()]
    }

    /// Snapshots everything recorded for `job` and resets the recorder
    /// for the next one. Allocates (the event copy) — call it between
    /// jobs, never inside a solve.
    pub fn drain(&mut self, job: usize) -> JobTelemetry {
        let out = JobTelemetry {
            job,
            events: self.ring.clone(),
            dropped: self.dropped,
            phase_ns: self.phase_ns,
            phase_calls: self.phase_calls,
            event_counts: self.event_counts,
            hist: self.hist,
            span: None,
        };
        self.reset();
        out
    }
}

impl Recorder for ActiveRecorder {
    #[inline]
    fn start(&self) -> Stamp {
        Stamp::now()
    }

    #[inline]
    fn phase(&mut self, phase: Phase, since: Stamp) {
        let ns = since.elapsed_ns();
        let i = phase.index();
        self.phase_ns[i] += ns;
        self.phase_calls[i] += 1;
        self.hist[i].record(ns);
    }

    #[inline]
    fn event(&mut self, event: Event) {
        self.event_counts[event.kind.index()] += 1;
        // Keep one slot in reserve for the terminal job_finish event.
        if self.ring.len() + 1 < self.ring.capacity() {
            self.ring.push(event);
        } else {
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_phases_and_events() {
        let mut rec = ActiveRecorder::new();
        let t = rec.start();
        rec.phase(Phase::Step, t);
        rec.event(Event::job_start());
        rec.event(Event::rollback(5, 2));
        rec.finish_job(10, 8, true);
        assert_eq!(rec.phase_calls[Phase::Step.index()], 1);
        let tele = rec.drain(3);
        assert_eq!(tele.job, 3);
        assert_eq!(tele.events.len(), 3);
        assert_eq!(tele.events[2].kind, EventKind::JobFinish);
        assert_eq!(tele.event_counts[EventKind::Rollback.index()], 1);
        assert_eq!(tele.hist[Phase::Step.index()].count(), 1);
        // Drained: the recorder is clean for the next job.
        assert_eq!(rec.dropped(), 0);
        let empty = rec.drain(4);
        assert!(empty.events.is_empty());
        assert_eq!(empty.phase_calls, [0; Phase::COUNT]);
    }

    #[test]
    fn ring_overflow_drops_but_counts_and_keeps_finish_slot() {
        let mut rec = ActiveRecorder::with_capacity(4);
        for i in 0..10 {
            rec.event(Event::detect(i, 0));
        }
        assert_eq!(rec.dropped(), 7); // capacity 4, one slot reserved
        rec.finish_job(10, 10, false);
        let tele = rec.drain(0);
        assert_eq!(tele.events.len(), 4);
        assert_eq!(tele.events.last().unwrap().kind, EventKind::JobFinish);
        assert_eq!(
            tele.events.last().unwrap().c,
            7,
            "dropped count rides job_finish"
        );
        assert_eq!(tele.event_counts[EventKind::Detect.index()], 10);
    }

    #[test]
    fn recording_never_allocates_after_construction() {
        // Belt-and-braces local check (the authoritative gate is the
        // counting global allocator in ftcg-solvers): the ring pointer
        // must not move however much is recorded.
        let mut rec = ActiveRecorder::with_capacity(64);
        let before = rec.ring.as_ptr();
        for i in 0..1000 {
            let t = rec.start();
            rec.phase(Phase::Product, t);
            rec.event(Event::fault(i, 0, 0, 1));
        }
        rec.finish_job(1000, 1000, true);
        assert_eq!(rec.ring.as_ptr(), before);
        rec.reset();
        assert_eq!(rec.ring.as_ptr(), before);
    }
}

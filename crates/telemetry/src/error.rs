//! Typed errors for the telemetry load/write paths.
//!
//! Every failure mode a trace or metrics sidecar can hit on disk —
//! torn headers, malformed lines, conflicting duplicates, campaign
//! mismatches — gets its own matchable variant, so callers (and the
//! error-path test suite) can assert *which* failure occurred instead
//! of grepping message strings. `Display` renders the same
//! `path: message` shape the string errors used, and a `From` impl
//! keeps `?` working in `Result<_, String>` call sites (the CLI).

/// A typed telemetry file error (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// An I/O operation on the file failed.
    Io {
        /// File the operation targeted.
        path: String,
        /// The underlying I/O error message.
        msg: String,
    },
    /// The file exists but contains nothing at all.
    Empty {
        /// The empty file.
        path: String,
    },
    /// The header line is torn (no newline survived) or unparseable.
    Header {
        /// File whose header is bad.
        path: String,
        /// What was wrong with it.
        msg: String,
    },
    /// A body line failed to parse.
    Malformed {
        /// File the line lives in.
        path: String,
        /// Byte offset of the offending line.
        offset: usize,
        /// Parse failure detail.
        msg: String,
    },
    /// A line references a job outside the campaign's job space.
    JobOutOfRange {
        /// File the line lives in.
        path: String,
        /// The out-of-range job index.
        job: usize,
        /// Total jobs the campaign header declares.
        total: usize,
    },
    /// Two lines with the same `(job, seq)` key carry different bytes.
    ConflictingDuplicate {
        /// File (or `<merge>` when detected across files).
        path: String,
        /// Job index of the conflicting lines.
        job: usize,
        /// Sequence number of the conflicting lines.
        seq: usize,
    },
    /// The file belongs to a different campaign than expected.
    CampaignMismatch {
        /// File (or `<merge>` when detected across files).
        path: String,
        /// Identity detail (names, fingerprints).
        msg: String,
    },
    /// Refusing to overwrite an existing file without `--resume`.
    AlreadyExists {
        /// The file that already exists.
        path: String,
    },
    /// No inputs were supplied where at least one is required.
    NoInput,
}

impl TelemetryError {
    /// Convenience constructor for [`TelemetryError::Io`].
    pub fn io(path: &std::path::Path, err: impl std::fmt::Display) -> TelemetryError {
        TelemetryError::Io {
            path: path.display().to_string(),
            msg: err.to_string(),
        }
    }
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::Io { path, msg } => write!(f, "{path}: {msg}"),
            TelemetryError::Empty { path } => write!(f, "{path}: empty telemetry file"),
            TelemetryError::Header { path, msg } => write!(f, "{path}: {msg}"),
            TelemetryError::Malformed { path, offset, msg } => {
                write!(f, "{path}: line at byte {offset}: {msg}")
            }
            TelemetryError::JobOutOfRange { path, job, total } => write!(
                f,
                "{path}: job {job} out of range (campaign has {total} jobs)"
            ),
            TelemetryError::ConflictingDuplicate { path, job, seq } => write!(
                f,
                "{path}: conflicting duplicate trace lines for job {job} seq {seq}"
            ),
            TelemetryError::CampaignMismatch { path, msg } => write!(f, "{path}: {msg}"),
            TelemetryError::AlreadyExists { path } => write!(
                f,
                "{path}: file already exists (pass --resume to continue it, or remove it)"
            ),
            TelemetryError::NoInput => write!(f, "no telemetry files to process"),
        }
    }
}

impl std::error::Error for TelemetryError {}

/// Keeps `?` usable in `Result<_, String>` call sites (the CLI's
/// command closures).
impl From<TelemetryError> for String {
    fn from(e: TelemetryError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_path_and_detail() {
        let e = TelemetryError::Malformed {
            path: "t.jsonl".into(),
            offset: 90,
            msg: "event missing `job`".into(),
        };
        assert_eq!(
            e.to_string(),
            "t.jsonl: line at byte 90: event missing `job`"
        );
        let s: String = e.into();
        assert!(s.contains("byte 90"));
    }

    #[test]
    fn variants_are_matchable() {
        let e = TelemetryError::ConflictingDuplicate {
            path: "x".into(),
            job: 3,
            seq: 1,
        };
        match e {
            TelemetryError::ConflictingDuplicate { job, seq, .. } => {
                assert_eq!((job, seq), (3, 1));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}

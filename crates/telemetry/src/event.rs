//! Structured, wall-clock-free protocol events.
//!
//! An [`Event`] is a fixed-size record of one protocol fact — a fault
//! landed, a detection fired, a checkpoint committed — keyed by the
//! *executed-iteration* count at which it happened. Payloads are plain
//! integers (target codes, bit positions, iteration numbers) chosen so
//! that the drained trace of a job depends only on `(configuration,
//! seed)`: two runs of the same campaign produce byte-identical traces
//! no matter the thread count, shard split, or wall-clock speed.

/// The kind of protocol fact an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A job began executing (emitted by the campaign layer).
    JobStart,
    /// A fault was injected (`a` = target code, `b` = element offset,
    /// `c` = flipped bit).
    Fault,
    /// A verification detected corruption (`a` = detector code, see
    /// [`via`]).
    Detect,
    /// An ABFT forward correction repaired state in place (`b` = number
    /// of elements repaired, always 1).
    CorrectForward,
    /// A TMR majority vote out-voted corrupt replicas (`b` = number of
    /// elements repaired).
    CorrectTmr,
    /// A chunk-boundary verification ran (`a` = 1 if the state was
    /// accepted). Only emitted when the verification is priced
    /// (ONLINE-DETECTION) or when it fails — the ABFT schemes' free
    /// per-iteration no-op checks would bloat the trace.
    ChunkVerify,
    /// A checkpoint committed (`a` = productive iteration saved).
    Checkpoint,
    /// A rollback restored verified state (`a` = productive iteration
    /// restored to).
    Rollback,
    /// A rollback escalated to the pristine initial data.
    Escalate,
    /// Convergence was accepted at a verified chunk boundary (`a` =
    /// productive iterations).
    Converged,
    /// The job finished (`it` = executed iterations, `a` = productive
    /// iterations, `b` = 1 if converged, `c` = events dropped by the
    /// ring before this one).
    JobFinish,
}

impl EventKind {
    /// Number of kinds (array dimension for per-kind counters).
    pub const COUNT: usize = 11;

    /// Every kind, in canonical order.
    pub const ALL: [EventKind; EventKind::COUNT] = [
        EventKind::JobStart,
        EventKind::Fault,
        EventKind::Detect,
        EventKind::CorrectForward,
        EventKind::CorrectTmr,
        EventKind::ChunkVerify,
        EventKind::Checkpoint,
        EventKind::Rollback,
        EventKind::Escalate,
        EventKind::Converged,
        EventKind::JobFinish,
    ];

    /// Stable dense index, `0..COUNT`.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            EventKind::JobStart => 0,
            EventKind::Fault => 1,
            EventKind::Detect => 2,
            EventKind::CorrectForward => 3,
            EventKind::CorrectTmr => 4,
            EventKind::ChunkVerify => 5,
            EventKind::Checkpoint => 6,
            EventKind::Rollback => 7,
            EventKind::Escalate => 8,
            EventKind::Converged => 9,
            EventKind::JobFinish => 10,
        }
    }

    /// Stable snake_case name used in the trace rendering.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::JobStart => "job_start",
            EventKind::Fault => "fault",
            EventKind::Detect => "detect",
            EventKind::CorrectForward => "correct_forward",
            EventKind::CorrectTmr => "correct_tmr",
            EventKind::ChunkVerify => "chunk_verify",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Rollback => "rollback",
            EventKind::Escalate => "escalate",
            EventKind::Converged => "converged",
            EventKind::JobFinish => "job_finish",
        }
    }
}

/// Detector codes carried in [`EventKind::Detect`]'s `a` payload.
pub mod via {
    /// A checksum product verification rejected the product.
    pub const PRODUCT: u64 = 0;
    /// A TMR vote found an unrecoverable replica collision.
    pub const TMR: u64 = 1;
    /// A chunk-boundary stability test tripped.
    pub const CHUNK: u64 = 2;
    /// The solver machine reported a numerical breakdown.
    pub const BREAKDOWN: u64 = 3;

    /// Stable name for a detector code.
    pub fn name(code: u64) -> &'static str {
        match code {
            PRODUCT => "product",
            TMR => "tmr",
            CHUNK => "chunk",
            BREAKDOWN => "breakdown",
            _ => "unknown",
        }
    }

    /// Code for a detector name (inverse of [`name`]).
    pub fn code(name: &str) -> Option<u64> {
        [PRODUCT, TMR, CHUNK, BREAKDOWN]
            .into_iter()
            .find(|&c| self::name(c) == name)
    }
}

/// Fault-target codes carried in [`EventKind::Fault`]'s `a` payload.
///
/// These mirror the injector's target model without depending on it:
/// the executor maps its `FaultTarget` onto these codes when emitting.
pub mod target {
    /// The matrix value array.
    pub const A_VALUES: u64 = 0;
    /// The matrix column-index array.
    pub const A_COL_IDX: u64 = 1;
    /// The matrix row-pointer array.
    pub const A_ROW_PTR: u64 = 2;
    /// The direction vector `p`.
    pub const P: u64 = 3;
    /// The product vector `q = A·p`.
    pub const Q: u64 = 4;
    /// The residual vector `r`.
    pub const R: u64 = 5;
    /// The iterate `x`.
    pub const X: u64 = 6;

    /// Stable name for a target code.
    pub fn name(code: u64) -> &'static str {
        match code {
            A_VALUES => "a_values",
            A_COL_IDX => "a_colidx",
            A_ROW_PTR => "a_rowptr",
            P => "p",
            Q => "q",
            R => "r",
            X => "x",
            _ => "unknown",
        }
    }

    /// Code for a target name (inverse of [`name`]).
    pub fn code(name: &str) -> Option<u64> {
        [A_VALUES, A_COL_IDX, A_ROW_PTR, P, Q, R, X]
            .into_iter()
            .find(|&c| self::name(c) == name)
    }
}

/// One fixed-size protocol event. `it` is always the executed-iteration
/// count at emission; `a`/`b`/`c` are kind-specific payloads documented
/// on [`EventKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Executed iterations at the time of the event.
    pub it: u64,
    /// First kind-specific payload.
    pub a: u64,
    /// Second kind-specific payload.
    pub b: u64,
    /// Third kind-specific payload.
    pub c: u64,
}

impl Event {
    fn new(kind: EventKind, it: u64, a: u64, b: u64, c: u64) -> Event {
        Event { kind, it, a, b, c }
    }

    /// A job began executing.
    pub fn job_start() -> Event {
        Event::new(EventKind::JobStart, 0, 0, 0, 0)
    }

    /// A fault struck `target` (a [`target`] code) at element `at`,
    /// flipping bit `bit`.
    pub fn fault(it: u64, target: u64, at: u64, bit: u64) -> Event {
        Event::new(EventKind::Fault, it, target, at, bit)
    }

    /// A detection fired via detector `via` (a [`via`] code).
    pub fn detect(it: u64, via: u64) -> Event {
        Event::new(EventKind::Detect, it, via, 0, 0)
    }

    /// An ABFT forward correction repaired one element in place.
    pub fn correct_forward(it: u64) -> Event {
        Event::new(EventKind::CorrectForward, it, 0, 1, 0)
    }

    /// A TMR vote repaired `n` elements.
    pub fn correct_tmr(it: u64, n: u64) -> Event {
        Event::new(EventKind::CorrectTmr, it, 0, n, 0)
    }

    /// A chunk verification ran; `ok` is whether the state passed.
    pub fn chunk_verify(it: u64, ok: bool) -> Event {
        Event::new(EventKind::ChunkVerify, it, ok as u64, 0, 0)
    }

    /// A checkpoint of productive iteration `at` committed.
    pub fn checkpoint(it: u64, at: u64) -> Event {
        Event::new(EventKind::Checkpoint, it, at, 0, 0)
    }

    /// A rollback restored productive iteration `to`.
    pub fn rollback(it: u64, to: u64) -> Event {
        Event::new(EventKind::Rollback, it, to, 0, 0)
    }

    /// A rollback escalated to the pristine initial data.
    pub fn escalate(it: u64) -> Event {
        Event::new(EventKind::Escalate, it, 0, 0, 0)
    }

    /// Convergence accepted at productive iteration `at`.
    pub fn converged(it: u64, at: u64) -> Event {
        Event::new(EventKind::Converged, it, at, 0, 0)
    }

    /// The job finished.
    pub fn job_finish(executed: u64, productive: u64, converged: bool, dropped: u64) -> Event {
        Event::new(
            EventKind::JobFinish,
            executed,
            productive,
            converged as u64,
            dropped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_are_dense_and_match_all_order() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        let names: std::collections::BTreeSet<_> =
            EventKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), EventKind::COUNT);
    }

    #[test]
    fn code_name_roundtrip() {
        for c in 0..4u64 {
            assert_eq!(via::code(via::name(c)), Some(c));
        }
        for c in 0..7u64 {
            assert_eq!(target::code(target::name(c)), Some(c));
        }
        assert_eq!(via::code("nope"), None);
        assert_eq!(target::code("nope"), None);
    }
}

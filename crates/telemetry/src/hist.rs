//! Fixed-bucket logarithmic duration histograms.
//!
//! A [`DurationHist`] is 64 power-of-two nanosecond buckets in a plain
//! array: recording is a `leading_zeros` and an increment — no
//! allocation, no branching on bucket boundaries — which is what lets
//! the active recorder keep one histogram per phase live on the solve
//! hot path under the counting-allocator gate.

/// Number of buckets; bucket `i > 0` holds durations in
/// `[2^(i-1), 2^i)` nanoseconds, bucket 0 holds `0` ns.
pub const BUCKETS: usize = 64;

/// A fixed-size log2-scale histogram of nanosecond durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurationHist {
    counts: [u64; BUCKETS],
}

impl Default for DurationHist {
    fn default() -> Self {
        DurationHist::new()
    }
}

impl DurationHist {
    /// An empty histogram.
    pub const fn new() -> DurationHist {
        DurationHist {
            counts: [0; BUCKETS],
        }
    }

    /// Bucket index for a duration.
    #[inline]
    fn bucket(ns: u64) -> usize {
        // 0 → 0; otherwise 1 + floor(log2(ns)), saturating at the top.
        (64 - ns.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one duration. Allocation-free.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket(ns)] += 1;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &DurationHist) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += *o;
        }
    }

    /// Total number of recorded durations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Reconstructs a histogram from raw bucket counts; shorter slices
    /// are zero-padded (the serialized form trims trailing zeros).
    pub fn from_buckets(counts: &[u64]) -> Option<DurationHist> {
        if counts.len() > BUCKETS {
            return None;
        }
        let mut h = DurationHist::new();
        h.counts[..counts.len()].copy_from_slice(counts);
        Some(h)
    }

    /// An upper bound (in ns) on the `q`-quantile recorded duration
    /// (`0.0 <= q <= 1.0`); `None` when empty. Resolution is the bucket
    /// width, i.e. a factor of two.
    pub fn quantile_upper_ns(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i == 0 { 0 } else { 1u64 << i.min(63) });
            }
        }
        Some(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        let mut h = DurationHist::new();
        h.record(0); // bucket 0
        h.record(1); // [1,2) → bucket 1
        h.record(2); // [2,4) → bucket 2
        h.record(3);
        h.record(1024); // bucket 11
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[11], 1);
        h.record(u64::MAX); // saturates into the top bucket
        assert_eq!(h.buckets()[BUCKETS - 1], 1);
    }

    #[test]
    fn merge_and_quantiles() {
        let mut a = DurationHist::new();
        let mut b = DurationHist::new();
        for _ in 0..90 {
            a.record(100); // bucket 7, upper bound 128
        }
        for _ in 0..10 {
            b.record(100_000); // bucket 17, upper bound 131072
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.quantile_upper_ns(0.5), Some(128));
        assert_eq!(a.quantile_upper_ns(0.99), Some(131_072));
        assert_eq!(DurationHist::new().quantile_upper_ns(0.5), None);
    }

    #[test]
    fn quantile_rank_math_is_pinned() {
        // Ceil-rank semantics: with counts [2 in bucket 1, 2 in bucket 3],
        // rank(q) = max(1, ceil(q * 4)).
        let mut h = DurationHist::new();
        h.record(1); // bucket 1, upper bound 2
        h.record(1);
        h.record(5); // bucket 3, upper bound 8
        h.record(7);
        assert_eq!(h.quantile_upper_ns(0.0), Some(2), "q=0 is the minimum");
        assert_eq!(h.quantile_upper_ns(0.25), Some(2)); // rank 1
        assert_eq!(h.quantile_upper_ns(0.5), Some(2)); // rank 2
        assert_eq!(h.quantile_upper_ns(0.51), Some(8)); // rank 3
        assert_eq!(h.quantile_upper_ns(0.75), Some(8)); // rank 3
        assert_eq!(h.quantile_upper_ns(1.0), Some(8), "q=1 is the maximum");
        assert_eq!(h.quantile_upper_ns(2.0), Some(8), "q clamps to [0,1]");

        // Bucket 0 (exact zero durations) reports an upper bound of 0.
        let mut z = DurationHist::new();
        z.record(0);
        assert_eq!(z.quantile_upper_ns(0.5), Some(0));

        // The saturating top bucket reports 2^63 (its lower bound —
        // the only representable bound) rather than overflowing.
        let mut top = DurationHist::new();
        top.record(u64::MAX);
        assert_eq!(top.quantile_upper_ns(0.5), Some(1u64 << 63));
    }

    #[test]
    fn roundtrip_from_trimmed_buckets() {
        let mut h = DurationHist::new();
        h.record(7);
        h.record(900);
        let trimmed: Vec<u64> = {
            let b = h.buckets();
            let last = b.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
            b[..last].to_vec()
        };
        assert!(trimmed.len() < BUCKETS);
        assert_eq!(DurationHist::from_buckets(&trimmed), Some(h));
        assert!(DurationHist::from_buckets(&[0; 65]).is_none());
    }
}

#![forbid(unsafe_code)]
//! `ftcg-telemetry`: zero-overhead observability for the fault-tolerant
//! CG pipeline.
//!
//! The crate splits observability into three strictly separated layers:
//!
//! 1. **Recording** ([`Recorder`], [`NoopRecorder`], [`ActiveRecorder`])
//!    — the hot-path contract. The resilient executor is generic over
//!    `R: Recorder`; the no-op default monomorphizes to nothing (no
//!    clock reads, no stores), and the active recorder is pre-allocated
//!    per worker (plain counter arrays, fixed-bucket log-scale
//!    [`DurationHist`]s, a bounded event ring) so recording passes the
//!    workspace pipeline's counting-allocator gate.
//! 2. **The deterministic trace** ([`trace`]) — drained protocol events
//!    rendered as JSONL keyed by `(job index, seq)`, never wall-clock.
//!    The canonical form is byte-identical across threads, shards, and
//!    kill/resume cycles of the same campaign.
//! 3. **The non-deterministic sidecar** ([`metrics`]) — per-job phase
//!    wall times and merged histograms, quarantined in a separate file
//!    precisely because timings are not reproducible.
//!
//! [`report`] folds both back into per-configuration tables and
//! reconciles trace event counts against journal counters — the
//! measured counterpart of the paper's cost decomposition.

#![warn(missing_docs)]

pub mod active;
pub mod error;
pub mod event;
pub mod hist;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod trace;

pub use active::{ActiveRecorder, JobSpan, JobTelemetry, DEFAULT_RING_CAPACITY};
pub use error::TelemetryError;
pub use event::{Event, EventKind};
pub use hist::DurationHist;
pub use recorder::{NoopRecorder, Phase, Recorder, Stamp};
pub use trace::{Trace, TraceMeta, TraceWriter};

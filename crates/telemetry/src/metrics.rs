//! The non-deterministic metrics sidecar: per-job phase timings.
//!
//! Where the trace records *what happened* (deterministically), the
//! sidecar records *how long it took*: one JSONL line per job with
//! per-phase wall-time and call counts, plus a final summary line with
//! merged per-phase duration histograms. The file is explicitly
//! non-deterministic — timings differ run to run — which is exactly
//! why they are quarantined here instead of riding the trace.
//!
//! Campaign runs also stamp each job line with an optional `span`
//! object (`worker`, `start_ns`, `end_ns` relative to run start) so
//! the Perfetto export can reconstruct per-worker timelines; readers
//! ignore unknown keys, so span-less files from older runs still load.
//!
//! Crash discipline mirrors the journal: per-job lines are appended
//! and flushed at job completion; a torn tail is dropped on load;
//! duplicate job lines (a job re-run after a crash) keep the *last*
//! occurrence, the one whose job actually produced a journal record.

use std::io::{Read, Seek, Write};
use std::path::Path;

use serde::json::{self, Value};

use crate::active::{JobSpan, JobTelemetry};
use crate::error::TelemetryError;
use crate::hist::DurationHist;
use crate::recorder::Phase;
use crate::trace::{read_u64, TraceMeta};

/// One job's phase breakdown, as recorded in the sidecar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPhases {
    /// Global job index.
    pub job: usize,
    /// Per-phase accumulated wall time (ns), indexed by [`Phase::index`].
    pub ns: [u64; Phase::COUNT],
    /// Per-phase call counts, indexed by [`Phase::index`].
    pub calls: [u64; Phase::COUNT],
    /// Events the bounded trace ring dropped for this job.
    pub dropped: u64,
    /// Wall-clock execution window relative to run start, when the
    /// writing run recorded one (campaign runs do; older files don't).
    pub span: Option<JobSpan>,
}

fn phase_map(values: &[u64; Phase::COUNT]) -> String {
    let mut out = String::from("{");
    for (i, p) in Phase::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", p.name(), values[p.index()]));
    }
    out.push('}');
    out
}

fn parse_phase_map(v: &Value) -> Result<[u64; Phase::COUNT], String> {
    let mut out = [0u64; Phase::COUNT];
    for p in Phase::ALL {
        out[p.index()] = v
            .get(p.name())
            .and_then(read_u64)
            .ok_or_else(|| format!("phase map missing `{}`", p.name()))?;
    }
    Ok(out)
}

/// Renders one job line (no trailing newline).
pub fn job_line(
    job: usize,
    ns: &[u64; Phase::COUNT],
    calls: &[u64; Phase::COUNT],
    dropped: u64,
    span: Option<&JobSpan>,
) -> String {
    let span_part = match span {
        Some(s) => format!(
            ",\"span\":{{\"worker\":{},\"start_ns\":{},\"end_ns\":{}}}",
            s.worker, s.start_ns, s.end_ns
        ),
        None => String::new(),
    };
    format!(
        "{{\"job\":{job},\"ns\":{},\"calls\":{},\"dropped\":{dropped}{span_part}}}",
        phase_map(ns),
        phase_map(calls),
    )
}

fn parse_span(v: &Value) -> Result<Option<JobSpan>, String> {
    let Some(s) = v.get("span") else {
        return Ok(None);
    };
    let u = |key: &str| {
        s.get(key)
            .and_then(read_u64)
            .ok_or_else(|| format!("span missing `{key}`"))
    };
    Ok(Some(JobSpan {
        worker: u("worker")?,
        start_ns: u("start_ns")?,
        end_ns: u("end_ns")?,
    }))
}

fn hist_summary_line(hists: &[DurationHist; Phase::COUNT]) -> String {
    let mut out = String::from("{\"summary\":{\"hist_ns\":{");
    for (i, p) in Phase::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let b = hists[p.index()].buckets();
        let last = b.iter().rposition(|&c| c != 0).map_or(0, |j| j + 1);
        out.push_str(&format!("\"{}\":[", p.name()));
        for (j, c) in b[..last].iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push(']');
    }
    out.push_str("}}}");
    out
}

fn parse_hist_summary(v: &Value) -> Result<[DurationHist; Phase::COUNT], String> {
    let h = v
        .get("summary")
        .and_then(|s| s.get("hist_ns"))
        .ok_or("summary line missing `hist_ns`")?;
    let mut out = [DurationHist::new(); Phase::COUNT];
    for p in Phase::ALL {
        let arr = h
            .get(p.name())
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("summary missing histogram for `{}`", p.name()))?;
        let counts: Option<Vec<u64>> = arr.iter().map(read_u64).collect();
        out[p.index()] = counts
            .and_then(|c| DurationHist::from_buckets(&c))
            .ok_or_else(|| format!("malformed histogram for `{}`", p.name()))?;
    }
    Ok(out)
}

/// A loaded metrics sidecar.
#[derive(Debug)]
pub struct MetricsFile {
    /// The campaign identity from the header line.
    pub meta: TraceMeta,
    /// Per-job phase breakdowns, last occurrence per job, file order.
    pub jobs: Vec<JobPhases>,
    /// Merged per-phase histograms from the last summary line, if any.
    pub hist: Option<[DurationHist; Phase::COUNT]>,
    /// Whether a torn final line was dropped.
    pub torn_tail: bool,
    /// Byte length of the valid prefix of the file.
    valid_len: u64,
}

impl MetricsFile {
    /// Loads and validates a metrics sidecar; drops a torn final line.
    pub fn load(path: &Path) -> Result<MetricsFile, TelemetryError> {
        let p = || path.display().to_string();
        let mut text = String::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| TelemetryError::io(path, e))?;
        let mut lines: Vec<(usize, &str)> = Vec::new();
        let mut start = 0usize;
        for (i, byte) in text.bytes().enumerate() {
            if byte == b'\n' {
                lines.push((start, &text[start..i]));
                start = i + 1;
            }
        }
        let tail = &text[start..];
        let meta = match lines.first() {
            Some((_, first)) => TraceMeta::parse_metrics_header(first)
                .map_err(|msg| TelemetryError::Header { path: p(), msg })?,
            None if !tail.is_empty() => {
                return Err(TelemetryError::Header {
                    path: p(),
                    msg: "torn header line (crash during sidecar creation)".into(),
                });
            }
            None => return Err(TelemetryError::Empty { path: p() }),
        };
        let mal = |off: usize, msg: String| TelemetryError::Malformed {
            path: p(),
            offset: off,
            msg,
        };
        let mut jobs: Vec<JobPhases> = Vec::new();
        let mut by_job: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut hist = None;
        for &(off, line) in &lines[1..] {
            let v = json::parse(line).map_err(|e| mal(off, e.to_string()))?;
            if v.get("summary").is_some() {
                hist = Some(parse_hist_summary(&v).map_err(|e| mal(off, e))?);
                continue;
            }
            let job = v
                .get("job")
                .and_then(read_u64)
                .ok_or_else(|| mal(off, "missing `job`".into()))? as usize;
            if job >= meta.total_jobs {
                return Err(TelemetryError::JobOutOfRange {
                    path: p(),
                    job,
                    total: meta.total_jobs,
                });
            }
            let rec = JobPhases {
                job,
                ns: v
                    .get("ns")
                    .ok_or_else(|| mal(off, "missing `ns`".into()))
                    .and_then(|m| parse_phase_map(m).map_err(|e| mal(off, e)))?,
                calls: v
                    .get("calls")
                    .ok_or_else(|| mal(off, "missing `calls`".into()))
                    .and_then(|m| parse_phase_map(m).map_err(|e| mal(off, e)))?,
                dropped: v
                    .get("dropped")
                    .and_then(read_u64)
                    .ok_or_else(|| mal(off, "missing `dropped`".into()))?,
                span: parse_span(&v).map_err(|e| mal(off, e))?,
            };
            match by_job.get(&job) {
                Some(&i) => jobs[i] = rec, // re-run after a crash: last wins
                None => {
                    by_job.insert(job, jobs.len());
                    jobs.push(rec);
                }
            }
        }
        Ok(MetricsFile {
            meta,
            jobs,
            hist,
            torn_tail: !tail.is_empty(),
            valid_len: start as u64,
        })
    }
}

/// An open, append-mode metrics sidecar. Accumulates merged per-phase
/// histograms across the jobs it writes and appends them as a summary
/// line on [`finish`](Self::finish).
#[derive(Debug)]
pub struct MetricsWriter {
    file: std::fs::File,
    hists: [DurationHist; Phase::COUNT],
}

impl MetricsWriter {
    /// Creates a fresh sidecar at `path`, writing (and flushing) the
    /// header. Refuses to overwrite an existing file.
    pub fn create(path: &Path, meta: &TraceMeta) -> Result<MetricsWriter, TelemetryError> {
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::AlreadyExists {
                    TelemetryError::AlreadyExists {
                        path: path.display().to_string(),
                    }
                } else {
                    TelemetryError::io(path, e)
                }
            })?;
        let mut line = meta.metrics_header();
        line.push('\n');
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| TelemetryError::io(path, e))?;
        Ok(MetricsWriter {
            file,
            hists: [DurationHist::new(); Phase::COUNT],
        })
    }

    /// Reopens an existing sidecar for appending: validates the header
    /// against `meta`, truncates a torn tail, seeds the histogram
    /// accumulator from the prior run's summary (if any), and seeks to
    /// the end.
    pub fn resume(path: &Path, meta: &TraceMeta) -> Result<MetricsWriter, TelemetryError> {
        let loaded = MetricsFile::load(path)?;
        if loaded.meta != *meta {
            return Err(TelemetryError::CampaignMismatch {
                path: path.display().to_string(),
                msg: format!(
                    "metrics sidecar belongs to a different campaign (header name `{}`)",
                    loaded.meta.name
                ),
            });
        }
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| TelemetryError::io(path, e))?;
        file.set_len(loaded.valid_len)
            .map_err(|e| TelemetryError::io(path, e))?;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| TelemetryError::io(path, e))?;
        Ok(MetricsWriter {
            file,
            hists: loaded.hist.unwrap_or([DurationHist::new(); Phase::COUNT]),
        })
    }

    /// Appends one job's phase breakdown and flushes; merges its
    /// histograms into the summary accumulator.
    pub fn append_job(&mut self, tele: &JobTelemetry) -> Result<(), TelemetryError> {
        for (acc, h) in self.hists.iter_mut().zip(tele.hist.iter()) {
            acc.merge(h);
        }
        let mut line = job_line(
            tele.job,
            &tele.phase_ns,
            &tele.phase_calls,
            tele.dropped,
            tele.span.as_ref(),
        );
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| TelemetryError::Io {
                path: "<metrics>".into(),
                msg: e.to_string(),
            })
    }

    /// Appends the merged-histogram summary line and flushes.
    pub fn finish(&mut self) -> Result<(), TelemetryError> {
        let mut line = hist_summary_line(&self.hists);
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| TelemetryError::Io {
                path: "<metrics>".into(),
                msg: e.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta {
            name: "unit".into(),
            fingerprint: 7,
            seed: 9,
            reps: 1,
            total_jobs: 3,
        }
    }

    fn tele(job: usize, step_ns: u64) -> JobTelemetry {
        let mut t = JobTelemetry {
            job,
            events: Vec::new(),
            dropped: 0,
            phase_ns: [0; Phase::COUNT],
            phase_calls: [0; Phase::COUNT],
            event_counts: [0; crate::event::EventKind::COUNT],
            hist: [DurationHist::new(); Phase::COUNT],
            span: None,
        };
        t.phase_ns[Phase::Step.index()] = step_ns;
        t.phase_calls[Phase::Step.index()] = 4;
        t.hist[Phase::Step.index()].record(step_ns / 4);
        t
    }

    #[test]
    fn write_load_resume_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ftcg-metrics-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("m.jsonl");
        let _ = std::fs::remove_file(&p);
        let m = meta();
        let mut w = MetricsWriter::create(&p, &m).unwrap();
        w.append_job(&tele(0, 4000)).unwrap();
        w.append_job(&tele(2, 8000)).unwrap();
        w.finish().unwrap();
        drop(w);

        let loaded = MetricsFile::load(&p).unwrap();
        assert_eq!(loaded.meta, m);
        assert_eq!(loaded.jobs.len(), 2);
        assert_eq!(loaded.jobs[0].ns[Phase::Step.index()], 4000);
        assert_eq!(loaded.jobs[1].calls[Phase::Step.index()], 4);
        let hist = loaded.hist.unwrap();
        assert_eq!(hist[Phase::Step.index()].count(), 2);

        // Resume with a torn tail: tail dropped, summary seeded, a
        // duplicate job line keeps the last occurrence.
        let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
        f.write_all(b"{\"job\":1,\"ns\":{").unwrap();
        drop(f);
        let mut w = MetricsWriter::resume(&p, &m).unwrap();
        w.append_job(&tele(1, 2000)).unwrap();
        w.append_job(&tele(2, 6000)).unwrap();
        w.finish().unwrap();
        drop(w);
        let loaded = MetricsFile::load(&p).unwrap();
        assert_eq!(loaded.jobs.len(), 3);
        let j2 = loaded.jobs.iter().find(|j| j.job == 2).unwrap();
        assert_eq!(j2.ns[Phase::Step.index()], 6000, "last occurrence wins");
        assert_eq!(loaded.hist.unwrap()[Phase::Step.index()].count(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn span_records_roundtrip_and_stay_optional() {
        let dir = std::env::temp_dir().join(format!("ftcg-span-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("m.jsonl");
        let _ = std::fs::remove_file(&p);
        let m = meta();
        let mut w = MetricsWriter::create(&p, &m).unwrap();
        let mut spanned = tele(0, 4000);
        spanned.span = Some(JobSpan {
            worker: 2,
            start_ns: 1000,
            end_ns: 5500,
        });
        w.append_job(&spanned).unwrap();
        w.append_job(&tele(1, 2000)).unwrap(); // span-less line in the same file
        w.finish().unwrap();
        drop(w);
        let loaded = MetricsFile::load(&p).unwrap();
        assert_eq!(
            loaded.jobs[0].span,
            Some(JobSpan {
                worker: 2,
                start_ns: 1000,
                end_ns: 5500,
            })
        );
        assert_eq!(loaded.jobs[1].span, None);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! The [`Recorder`] contract: how the hot path reports phases and
//! events without paying for observability it did not ask for.

use std::time::Instant;

use crate::event::Event;

/// A timed phase of the resilient solve loop.
///
/// Phases are *nested* in the obvious way — [`Phase::Step`] covers the
/// whole solver step including the products it runs, so `Step` time is
/// a superset of `Product` + `ProductCheck` time. The report layer
/// keeps them side by side rather than subtracting, because the
/// inclusive numbers are what the paper's cost model prices
/// (`Titer`, `Tverif`, `Tcp`, `Trec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// One solver-machine step (inclusive of its products and checks).
    Step,
    /// One forward sparse matrix–vector product.
    Product,
    /// One checksum verification of a forward product (ABFT schemes).
    ProductCheck,
    /// One chunk-boundary state verification.
    ChunkVerify,
    /// One checkpoint save+commit.
    Checkpoint,
    /// One rollback restore (escalation included).
    Rollback,
    /// One TMR majority vote over the hardened vectors.
    TmrVote,
}

impl Phase {
    /// Number of phases (array dimension for per-phase accumulators).
    pub const COUNT: usize = 7;

    /// Every phase, in canonical (rendering) order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Step,
        Phase::Product,
        Phase::ProductCheck,
        Phase::ChunkVerify,
        Phase::Checkpoint,
        Phase::Rollback,
        Phase::TmrVote,
    ];

    /// Stable dense index, `0..COUNT`.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Phase::Step => 0,
            Phase::Product => 1,
            Phase::ProductCheck => 2,
            Phase::ChunkVerify => 3,
            Phase::Checkpoint => 4,
            Phase::Rollback => 5,
            Phase::TmrVote => 6,
        }
    }

    /// Stable snake_case name used in every serialized artifact.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Step => "step",
            Phase::Product => "product",
            Phase::ProductCheck => "product_check",
            Phase::ChunkVerify => "chunk_verify",
            Phase::Checkpoint => "checkpoint",
            Phase::Rollback => "rollback",
            Phase::TmrVote => "tmr_vote",
        }
    }
}

/// An opaque phase-start token returned by [`Recorder::start`].
///
/// The noop recorder hands back an empty stamp without reading the
/// clock, so an un-instrumented solve never executes a timer syscall.
#[derive(Debug, Clone, Copy)]
pub struct Stamp(Option<Instant>);

impl Stamp {
    /// A stamp that carries no clock reading (what [`NoopRecorder`]
    /// returns; elapsed time reads as zero).
    #[inline]
    pub fn empty() -> Stamp {
        Stamp(None)
    }

    /// A stamp taken now.
    #[inline]
    pub fn now() -> Stamp {
        Stamp(Some(Instant::now()))
    }

    /// Nanoseconds since the stamp was taken (0 for an empty stamp;
    /// saturates at `u64::MAX`).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        match self.0 {
            Some(t) => u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX),
            None => 0,
        }
    }
}

/// The observability contract the resilient executor records through.
///
/// The executor is generic over `R: Recorder` and monomorphized per
/// recorder, so the default no-op methods compile to nothing — the
/// un-instrumented solve is *bit- and instruction-identical* to the
/// pre-telemetry code, which is what the criterion overhead gate pins.
///
/// # Contract
///
/// * **No allocation after construction.** `phase` and `event` are
///   called from the solve hot path, which is covered by a counting
///   global-allocator gate (`crates/solvers/tests/alloc_gate.rs`). An
///   implementation must pre-allocate everything (fixed arrays, a
///   bounded ring) and drop events on overflow rather than grow.
/// * **No ordering guarantees across workers.** Recorders are
///   per-worker; nothing orders calls on one recorder against calls on
///   another, and merged output must not depend on inter-worker timing.
///   Determinism is recovered by keying drained events on (job index,
///   sequence) and folding in index order, never completion order.
/// * **Events must be wall-clock-free.** [`Event`] payloads carry
///   iteration counts and protocol facts only; timings go through
///   [`phase`](Recorder::phase) into the non-deterministic sidecar.
///   This is what keeps traces byte-diffable across machines and runs.
/// * **The recorder never influences control flow.** The executor's
///   decisions are taken before (or regardless of) any recorder call,
///   so instrumented and un-instrumented solves produce identical
///   outcomes.
pub trait Recorder {
    /// Marks the start of a timed phase. The default returns an empty
    /// stamp without touching the clock.
    #[inline]
    fn start(&self) -> Stamp {
        Stamp::empty()
    }

    /// Records a completed phase that began at `since`.
    #[inline]
    fn phase(&mut self, _phase: Phase, _since: Stamp) {}

    /// Records a structured protocol event.
    #[inline]
    fn event(&mut self, _event: Event) {}
}

/// The zero-cost default recorder: every method is an inline no-op and
/// [`start`](Recorder::start) never reads the clock.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_match_all_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let names: std::collections::BTreeSet<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), Phase::COUNT, "phase names must be unique");
    }

    #[test]
    fn empty_stamp_reads_zero() {
        assert_eq!(Stamp::empty().elapsed_ns(), 0);
    }

    #[test]
    fn live_stamp_advances() {
        let s = Stamp::now();
        std::hint::black_box((0..1000).sum::<u64>());
        // Monotonic clocks can legally read the same tick twice, but
        // elapsed must never go backwards.
        let a = s.elapsed_ns();
        let b = s.elapsed_ns();
        assert!(b >= a);
    }
}

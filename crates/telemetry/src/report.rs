//! Folding traces and metrics sidecars into per-config reports.
//!
//! This is the engine-free half of `ftcg report`: given parsed trace
//! events, sidecar phase lines, and the `(labels, reps)` shape of the
//! campaign grid, it folds everything by configuration (job `j` runs
//! configuration `j / reps`) into a phase-time/event table, and
//! reconciles per-job trace event counts against externally supplied
//! job counters (the journal's, in the CLI).

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};
use crate::hist::DurationHist;
use crate::metrics::JobPhases;
use crate::recorder::Phase;

/// Folded telemetry for one configuration of the grid.
#[derive(Debug, Clone)]
pub struct ConfigReport {
    /// Configuration label (from the spec grid, or `config N`).
    pub label: String,
    /// Jobs of this configuration seen in the trace.
    pub traced_jobs: usize,
    /// Jobs of this configuration seen in the metrics sidecar.
    pub timed_jobs: usize,
    /// Summed per-kind event counts, indexed by [`EventKind::index`].
    pub events: [u64; EventKind::COUNT],
    /// Summed per-phase wall time (ns), indexed by [`Phase::index`].
    pub phase_ns: [u64; Phase::COUNT],
    /// Summed per-phase call counts, indexed by [`Phase::index`].
    pub phase_calls: [u64; Phase::COUNT],
}

/// Folds trace events and sidecar lines into one row per configuration.
///
/// `labels` supplies one display label per configuration; jobs at or
/// beyond `labels.len() * reps` are an error (stale inputs).
pub fn fold_report(
    labels: &[String],
    reps: usize,
    trace_events: &[(usize, usize, Event)],
    metrics_jobs: &[JobPhases],
) -> Result<Vec<ConfigReport>, String> {
    if reps == 0 {
        return Err("reps must be positive".into());
    }
    let mut rows: Vec<ConfigReport> = labels
        .iter()
        .map(|l| ConfigReport {
            label: l.clone(),
            traced_jobs: 0,
            timed_jobs: 0,
            events: [0; EventKind::COUNT],
            phase_ns: [0; Phase::COUNT],
            phase_calls: [0; Phase::COUNT],
        })
        .collect();
    let config_of = |job: usize| -> Result<usize, String> {
        let c = job / reps;
        if c >= labels.len() {
            return Err(format!(
                "job {job} implies configuration {c}, but the spec has only {}",
                labels.len()
            ));
        }
        Ok(c)
    };
    let mut traced_seen: std::collections::BTreeSet<usize> = Default::default();
    for (job, _, ev) in trace_events {
        let c = config_of(*job)?;
        rows[c].events[ev.kind.index()] += 1;
        if traced_seen.insert(*job) {
            rows[c].traced_jobs += 1;
        }
    }
    for jp in metrics_jobs {
        let c = config_of(jp.job)?;
        rows[c].timed_jobs += 1;
        for i in 0..Phase::COUNT {
            rows[c].phase_ns[i] += jp.ns[i];
            rows[c].phase_calls[i] += jp.calls[i];
        }
    }
    Ok(rows)
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Renders the per-config report as an aligned ASCII table: one event
/// section (faults/detections/corrections/rollbacks/checkpoints) and
/// one phase-time section (ms, with share of total timed phase time).
pub fn render_report(rows: &[ConfigReport]) -> String {
    let mut out = String::new();
    let ev = |r: &ConfigReport, k: EventKind| r.events[k.index()];
    let mut table: Vec<Vec<String>> = vec![vec![
        "config".into(),
        "jobs".into(),
        "faults".into(),
        "detects".into(),
        "corrections".into(),
        "rollbacks".into(),
        "escalations".into(),
        "checkpoints".into(),
        "converged".into(),
    ]];
    for r in rows {
        table.push(vec![
            r.label.clone(),
            r.traced_jobs.to_string(),
            ev(r, EventKind::Fault).to_string(),
            ev(r, EventKind::Detect).to_string(),
            (ev(r, EventKind::CorrectForward) + ev(r, EventKind::CorrectTmr)).to_string(),
            ev(r, EventKind::Rollback).to_string(),
            ev(r, EventKind::Escalate).to_string(),
            ev(r, EventKind::Checkpoint).to_string(),
            ev(r, EventKind::Converged).to_string(),
        ]);
    }
    out.push_str("Protocol events (from trace)\n");
    out.push_str(&render_table(&table));
    if rows.iter().any(|r| r.timed_jobs > 0) {
        let mut timing: Vec<Vec<String>> = vec![{
            let mut h = vec!["config".into(), "jobs".into()];
            h.extend(Phase::ALL.iter().map(|p| format!("{} ms", p.name())));
            h
        }];
        for r in rows {
            let mut row = vec![r.label.clone(), r.timed_jobs.to_string()];
            row.extend(Phase::ALL.iter().map(|p| fmt_ms(r.phase_ns[p.index()])));
            timing.push(row);
        }
        out.push_str("\nPhase wall time (from metrics sidecar; step includes its products)\n");
        out.push_str(&render_table(&timing));
    }
    out
}

/// Renders the merged per-phase duration quantiles (the sidecar's
/// summary histograms) as an aligned table. Each quantile is an *upper
/// bound* at log2-bucket resolution — a factor of two — which is the
/// precision the allocation-free recorder can afford; phases with no
/// recorded calls are omitted.
pub fn render_phase_quantiles(hists: &[DurationHist; Phase::COUNT]) -> String {
    let mut table: Vec<Vec<String>> = vec![vec![
        "phase".into(),
        "calls".into(),
        "p50 ns".into(),
        "p90 ns".into(),
        "p99 ns".into(),
    ]];
    for p in Phase::ALL {
        let h = &hists[p.index()];
        if h.is_empty() {
            continue;
        }
        let q = |x: f64| {
            h.quantile_upper_ns(x)
                .map_or_else(|| "-".to_string(), |v| v.to_string())
        };
        table.push(vec![
            p.name().to_string(),
            h.count().to_string(),
            q(0.50),
            q(0.90),
            q(0.99),
        ]);
    }
    let mut out =
        String::from("Phase duration quantiles (log2-bucket upper bounds, all timed jobs)\n");
    out.push_str(&render_table(&table));
    out
}

/// Renders rows as an aligned two-space-separated table (first column
/// left-aligned, the rest right-aligned). Shared by every report-style
/// renderer in the workspace so tables look uniform.
pub fn render_table(rows: &[Vec<String>]) -> String {
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut width = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            width[i] = width[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            // Right-align numeric columns, left-align the label column.
            if i == 0 {
                out.push_str(&format!("{cell:<w$}", w = width[i]));
            } else {
                out.push_str(&format!("{cell:>w$}", w = width[i]));
            }
        }
        out.push('\n');
    }
    out
}

/// Externally supplied per-job counters to reconcile a trace against
/// (the journal's `JobMetrics`, in the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCounts {
    /// Faults injected.
    pub faults: u64,
    /// Rollbacks taken.
    pub rollbacks: u64,
    /// Corrections applied (forward + TMR elements).
    pub corrections: u64,
    /// Whether the solve converged.
    pub converged: bool,
}

/// The outcome of reconciling a trace against per-job counters.
#[derive(Debug, Clone, Default)]
pub struct Reconciliation {
    /// Jobs whose trace block and counters agreed.
    pub jobs_ok: usize,
    /// Jobs skipped because their ring overflowed (event counts are
    /// incomplete by construction; `dropped > 0` in `job_finish`).
    pub jobs_skipped: usize,
    /// Human-readable mismatch descriptions (empty means reconciled).
    pub mismatches: Vec<String>,
}

impl Reconciliation {
    /// Whether every checked job reconciled.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Checks, job by job, that the trace's event counts match the
/// externally recorded counters: every counted job must have a
/// complete trace block (`job_start` … `job_finish`) whose fault,
/// rollback, correction, and convergence counts agree.
pub fn reconcile(
    trace_events: &[(usize, usize, Event)],
    journal_counts: &BTreeMap<usize, JobCounts>,
) -> Reconciliation {
    #[derive(Default)]
    struct Tally {
        faults: u64,
        rollbacks: u64,
        corrections: u64,
        converged: u64,
        started: bool,
        finish: Option<Event>,
    }
    let mut per_job: BTreeMap<usize, Tally> = BTreeMap::new();
    for (job, _, ev) in trace_events {
        let t = per_job.entry(*job).or_default();
        match ev.kind {
            EventKind::JobStart => t.started = true,
            EventKind::Fault => t.faults += 1,
            EventKind::Rollback => t.rollbacks += 1,
            EventKind::CorrectForward | EventKind::CorrectTmr => t.corrections += ev.b,
            EventKind::Converged => t.converged += 1,
            EventKind::JobFinish => t.finish = Some(*ev),
            _ => {}
        }
    }
    let mut out = Reconciliation::default();
    for (&job, counts) in journal_counts {
        let Some(t) = per_job.get(&job) else {
            out.mismatches
                .push(format!("job {job}: journal record but no trace events"));
            continue;
        };
        let Some(finish) = t.finish else {
            out.mismatches
                .push(format!("job {job}: trace block has no job_finish"));
            continue;
        };
        if finish.c > 0 {
            out.jobs_skipped += 1; // ring overflow: counts incomplete
            continue;
        }
        let mut bad = Vec::new();
        if !t.started {
            bad.push("missing job_start".to_string());
        }
        if t.faults != counts.faults {
            bad.push(format!("faults {} != journal {}", t.faults, counts.faults));
        }
        if t.rollbacks != counts.rollbacks {
            bad.push(format!(
                "rollbacks {} != journal {}",
                t.rollbacks, counts.rollbacks
            ));
        }
        if t.corrections != counts.corrections {
            bad.push(format!(
                "corrections {} != journal {}",
                t.corrections, counts.corrections
            ));
        }
        if (finish.b == 1) != counts.converged || (t.converged > 0) != counts.converged {
            bad.push(format!(
                "converged {} != journal {}",
                finish.b == 1,
                counts.converged
            ));
        }
        if bad.is_empty() {
            out.jobs_ok += 1;
        } else {
            out.mismatches
                .push(format!("job {job}: {}", bad.join("; ")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(job: usize) -> Vec<(usize, usize, Event)> {
        let evs = vec![
            Event::job_start(),
            Event::fault(2, crate::event::target::R, 3, 10),
            Event::detect(2, crate::event::via::PRODUCT),
            Event::rollback(2, 1),
            Event::converged(6, 5),
            Event::job_finish(6, 5, true, 0),
        ];
        evs.into_iter()
            .enumerate()
            .map(|(seq, e)| (job, seq, e))
            .collect()
    }

    #[test]
    fn fold_groups_by_configuration() {
        let labels = vec!["cfg-a".to_string(), "cfg-b".to_string()];
        let mut events = trace_of(0);
        events.extend(trace_of(1)); // cfg-a (reps = 2)
        events.extend(trace_of(2)); // cfg-b
        let metrics = vec![JobPhases {
            job: 2,
            ns: [10; Phase::COUNT],
            calls: [1; Phase::COUNT],
            dropped: 0,
            span: None,
        }];
        let rows = fold_report(&labels, 2, &events, &metrics).unwrap();
        assert_eq!(rows[0].traced_jobs, 2);
        assert_eq!(rows[0].events[EventKind::Fault.index()], 2);
        assert_eq!(rows[1].traced_jobs, 1);
        assert_eq!(rows[1].timed_jobs, 1);
        assert_eq!(rows[1].phase_ns[Phase::Step.index()], 10);
        let rendered = render_report(&rows);
        assert!(rendered.contains("cfg-a"));
        assert!(rendered.contains("Phase wall time"));
        // Out-of-range jobs are an error.
        assert!(fold_report(&labels, 2, &trace_of(4), &[]).is_err());
    }

    #[test]
    fn phase_quantile_table_is_pinned() {
        let mut hists = [DurationHist::new(); Phase::COUNT];
        // 90 fast steps (100 ns → bucket 7, bound 128) and 10 slow ones
        // (100 µs → bucket 17, bound 131072); one 3 ns checkpoint.
        for _ in 0..90 {
            hists[Phase::Step.index()].record(100);
        }
        for _ in 0..10 {
            hists[Phase::Step.index()].record(100_000);
        }
        hists[Phase::Checkpoint.index()].record(3);
        let rendered = render_phase_quantiles(&hists);
        let step_row: Vec<&str> = rendered
            .lines()
            .find(|l| l.starts_with("step"))
            .unwrap()
            .split_whitespace()
            .collect();
        assert_eq!(step_row, ["step", "100", "128", "128", "131072"]);
        assert!(rendered.contains("checkpoint"));
        assert!(
            !rendered.contains("rollback"),
            "empty phases must be omitted"
        );
    }

    #[test]
    fn reconcile_matches_and_flags() {
        let events = trace_of(0);
        let good = JobCounts {
            faults: 1,
            rollbacks: 1,
            corrections: 0,
            converged: true,
        };
        let mut counts = BTreeMap::new();
        counts.insert(0, good);
        let rec = reconcile(&events, &counts);
        assert!(rec.ok(), "{:?}", rec.mismatches);
        assert_eq!(rec.jobs_ok, 1);

        counts.insert(0, JobCounts { faults: 3, ..good });
        assert!(!reconcile(&events, &counts).ok());

        counts.clear();
        counts.insert(7, good);
        let rec = reconcile(&events, &counts);
        assert!(rec.mismatches[0].contains("no trace events"));
    }
}

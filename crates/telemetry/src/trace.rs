//! The byte-deterministic event trace: rendering, appending, loading.
//!
//! A trace is a JSONL file: one header line identifying the campaign,
//! then one line per event keyed by `(job, seq)` — the global job index
//! and the event's position in that job's drained ring. No line ever
//! carries wall-clock data, so the *canonical* form of a trace (lines
//! sorted by `(job, seq)`) is byte-identical for a given campaign
//! across thread counts, shard splits, and kill/resume cycles; timings
//! live in the separate metrics sidecar (see [`crate::metrics`]).
//!
//! On disk the file follows the journal's crash discipline: a job's
//! whole event block is appended and flushed at job completion (before
//! the journal record, so a journal record implies a durable trace
//! block), a torn final line is dropped on load, and re-run jobs
//! produce byte-identical duplicate blocks that deduplicate on load.

use std::io::{Read, Seek, Write};
use std::path::Path;

use serde::json::{self, Value};

use crate::error::TelemetryError;
use crate::event::{target, via, Event, EventKind};

/// Trace format version (bumped on any incompatible line change).
pub const TRACE_VERSION: u64 = 1;

/// The campaign identity at the head of a trace or metrics file.
///
/// Deliberately shard-free (unlike the journal manifest): every shard
/// of one campaign writes the same header, so shard traces concatenate
/// into the full campaign's canonical trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Campaign name.
    pub name: String,
    /// FNV-1a fingerprint of the expanded grid (journal-compatible).
    pub fingerprint: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Repetitions per configuration (job `j` runs configuration
    /// `j / reps`).
    pub reps: usize,
    /// Total jobs in the full campaign.
    pub total_jobs: usize,
}

impl TraceMeta {
    fn header_line(&self, file_key: &str) -> String {
        // The seed is rendered as a decimal *string*: u64 seeds above
        // 2^53 do not survive a round-trip through an f64 JSON number.
        format!(
            "{{\"{file_key}\":{TRACE_VERSION},\"name\":{},\"fingerprint\":\"{:#018x}\",\
             \"seed\":\"{}\",\"reps\":{},\"total_jobs\":{}}}",
            Value::Str(self.name.clone()),
            self.fingerprint,
            self.seed,
            self.reps,
            self.total_jobs,
        )
    }

    /// Renders the trace header line (no trailing newline).
    pub fn trace_header(&self) -> String {
        self.header_line("ftcg_trace")
    }

    /// Renders the metrics-sidecar header line (no trailing newline).
    pub fn metrics_header(&self) -> String {
        self.header_line("ftcg_metrics")
    }

    fn parse_header(line: &str, file_key: &str) -> Result<TraceMeta, String> {
        let v = json::parse(line).map_err(|e| format!("header line: {e}"))?;
        let version = v
            .get(file_key)
            .and_then(read_u64)
            .ok_or_else(|| format!("not a ftcg file (missing `{file_key}` version field)"))?;
        if version != TRACE_VERSION {
            return Err(format!(
                "file version {version} is not the supported version {TRACE_VERSION}"
            ));
        }
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("header missing `name`")?
            .to_string();
        let fingerprint = v
            .get("fingerprint")
            .and_then(Value::as_str)
            .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
            .ok_or("header missing or malformed `fingerprint`")?;
        let seed = v
            .get("seed")
            .and_then(Value::as_str)
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or("header missing or malformed `seed` (expected a decimal string)")?;
        let reps = v
            .get("reps")
            .and_then(read_u64)
            .ok_or("header missing `reps`")? as usize;
        let total_jobs = v
            .get("total_jobs")
            .and_then(read_u64)
            .ok_or("header missing `total_jobs`")? as usize;
        Ok(TraceMeta {
            name,
            fingerprint,
            seed,
            reps,
            total_jobs,
        })
    }

    /// Parses a trace header line.
    pub fn parse_trace_header(line: &str) -> Result<TraceMeta, String> {
        Self::parse_header(line, "ftcg_trace")
    }

    /// Parses a metrics-sidecar header line.
    pub fn parse_metrics_header(line: &str) -> Result<TraceMeta, String> {
        Self::parse_header(line, "ftcg_metrics")
    }
}

/// Reads a non-negative integer JSON number that fits u64 exactly.
pub(crate) fn read_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Num(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= 9_007_199_254_740_992.0 => {
            Some(*f as u64)
        }
        _ => None,
    }
}

/// Renders one event as a trace JSONL line (no trailing newline). The
/// field order is fixed per kind; this rendering *is* the byte-level
/// determinism contract.
pub fn render_event(job: usize, seq: usize, ev: &Event) -> String {
    let head = format!(
        "{{\"job\":{job},\"seq\":{seq},\"ev\":\"{}\"",
        ev.kind.name()
    );
    match ev.kind {
        EventKind::JobStart => format!("{head}}}"),
        EventKind::Fault => format!(
            "{head},\"it\":{},\"target\":\"{}\",\"at\":{},\"bit\":{}}}",
            ev.it,
            target::name(ev.a),
            ev.b,
            ev.c
        ),
        EventKind::Detect => format!("{head},\"it\":{},\"via\":\"{}\"}}", ev.it, via::name(ev.a)),
        EventKind::CorrectForward => format!("{head},\"it\":{}}}", ev.it),
        EventKind::CorrectTmr => format!("{head},\"it\":{},\"n\":{}}}", ev.it, ev.b),
        EventKind::ChunkVerify => {
            format!("{head},\"it\":{},\"ok\":{}}}", ev.it, ev.a == 1)
        }
        EventKind::Checkpoint | EventKind::Converged => {
            format!("{head},\"it\":{},\"at\":{}}}", ev.it, ev.a)
        }
        EventKind::Rollback => format!("{head},\"it\":{},\"to\":{}}}", ev.it, ev.a),
        EventKind::Escalate => format!("{head},\"it\":{}}}", ev.it),
        EventKind::JobFinish => format!(
            "{head},\"executed\":{},\"productive\":{},\"converged\":{},\"dropped\":{}}}",
            ev.it,
            ev.a,
            ev.b == 1,
            ev.c
        ),
    }
}

/// Parses one trace line back into `(job, seq, event)`.
pub fn parse_event(line: &str) -> Result<(usize, usize, Event), String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let u = |key: &str| {
        v.get(key)
            .and_then(read_u64)
            .ok_or_else(|| format!("event missing `{key}`"))
    };
    let job = u("job")? as usize;
    let seq = u("seq")? as usize;
    let name = v
        .get("ev")
        .and_then(Value::as_str)
        .ok_or("event missing `ev`")?;
    let kind = EventKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown event kind `{name}`"))?;
    let b = |key: &str| match v.get(key) {
        Some(Value::Bool(x)) => Ok(*x as u64),
        _ => Err(format!("event missing boolean `{key}`")),
    };
    let s = |key: &str| {
        v.get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event missing `{key}`"))
    };
    let ev = match kind {
        EventKind::JobStart => Event::job_start(),
        EventKind::Fault => Event::fault(
            u("it")?,
            target::code(s("target")?).ok_or("unknown fault target")?,
            u("at")?,
            u("bit")?,
        ),
        EventKind::Detect => Event::detect(
            u("it")?,
            via::code(s("via")?).ok_or("unknown detector code")?,
        ),
        EventKind::CorrectForward => Event::correct_forward(u("it")?),
        EventKind::CorrectTmr => Event::correct_tmr(u("it")?, u("n")?),
        EventKind::ChunkVerify => Event::chunk_verify(u("it")?, b("ok")? == 1),
        EventKind::Checkpoint => Event::checkpoint(u("it")?, u("at")?),
        EventKind::Rollback => Event::rollback(u("it")?, u("to")?),
        EventKind::Escalate => Event::escalate(u("it")?),
        EventKind::Converged => Event::converged(u("it")?, u("at")?),
        EventKind::JobFinish => Event::job_finish(
            u("executed")?,
            u("productive")?,
            b("converged")? == 1,
            u("dropped")?,
        ),
    };
    Ok((job, seq, ev))
}

/// A loaded trace: header, deduplicated event lines, torn-tail flag.
#[derive(Debug)]
pub struct Trace {
    /// The campaign identity from the header line.
    pub meta: TraceMeta,
    /// Deduplicated `(job, seq, raw_line)` triples in file order.
    pub lines: Vec<(usize, usize, String)>,
    /// Whether a torn final line was dropped.
    pub torn_tail: bool,
    /// Byte length of the valid prefix of the file.
    valid_len: u64,
}

impl Trace {
    /// Loads and validates a trace file. A torn final line (crash
    /// mid-write) is dropped; duplicate `(job, seq)` lines are benign
    /// when byte-identical (a job re-run after a crash re-appends its
    /// deterministic block) and an error when they differ.
    pub fn load(path: &Path) -> Result<Trace, TelemetryError> {
        let p = || path.display().to_string();
        let mut text = String::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| TelemetryError::io(path, e))?;
        let mut lines: Vec<(usize, &str)> = Vec::new();
        let mut start = 0usize;
        for (i, byte) in text.bytes().enumerate() {
            if byte == b'\n' {
                lines.push((start, &text[start..i]));
                start = i + 1;
            }
        }
        let tail = &text[start..];
        let meta = match lines.first() {
            Some((_, first)) => TraceMeta::parse_trace_header(first)
                .map_err(|msg| TelemetryError::Header { path: p(), msg })?,
            None if !tail.is_empty() => {
                return Err(TelemetryError::Header {
                    path: p(),
                    msg: "torn header line (crash during trace creation)".into(),
                });
            }
            None => return Err(TelemetryError::Empty { path: p() }),
        };
        let mut out: Vec<(usize, usize, String)> = Vec::with_capacity(lines.len() - 1);
        let mut seen: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        for &(off, line) in &lines[1..] {
            let (job, seq, _) = parse_event(line).map_err(|msg| TelemetryError::Malformed {
                path: p(),
                offset: off,
                msg,
            })?;
            if job >= meta.total_jobs {
                return Err(TelemetryError::JobOutOfRange {
                    path: p(),
                    job,
                    total: meta.total_jobs,
                });
            }
            match seen.get(&(job, seq)) {
                None => {
                    seen.insert((job, seq), out.len());
                    out.push((job, seq, line.to_string()));
                }
                Some(&i) if out[i].2 == line => {} // benign re-run duplicate
                Some(_) => {
                    return Err(TelemetryError::ConflictingDuplicate {
                        path: p(),
                        job,
                        seq,
                    });
                }
            }
        }
        Ok(Trace {
            meta,
            lines: out,
            torn_tail: !tail.is_empty(),
            valid_len: start as u64,
        })
    }

    /// The canonical byte-deterministic rendering: header plus all
    /// event lines stably sorted by `(job, seq)`.
    pub fn canonical_string(&self) -> String {
        let mut sorted: Vec<&(usize, usize, String)> = self.lines.iter().collect();
        sorted.sort_by_key(|(job, seq, _)| (*job, *seq));
        let mut out = self.meta.trace_header();
        out.push('\n');
        for (_, _, line) in sorted {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Parses every line into `(job, seq, event)` triples (file order).
    pub fn parsed(&self) -> Result<Vec<(usize, usize, Event)>, String> {
        self.lines
            .iter()
            .map(|(_, _, line)| parse_event(line))
            .collect()
    }

    /// Merges shard traces of one campaign into a single trace.
    /// Headers must agree; overlapping `(job, seq)` lines must be
    /// byte-identical.
    pub fn merge(traces: Vec<Trace>) -> Result<Trace, TelemetryError> {
        let mut iter = traces.into_iter();
        let mut base = iter.next().ok_or(TelemetryError::NoInput)?;
        let mut seen: std::collections::HashMap<(usize, usize), usize> = base
            .lines
            .iter()
            .enumerate()
            .map(|(i, (job, seq, _))| ((*job, *seq), i))
            .collect();
        for t in iter {
            if t.meta != base.meta {
                return Err(TelemetryError::CampaignMismatch {
                    path: "<merge>".into(),
                    msg: format!(
                        "trace headers disagree: campaign `{}` (fingerprint {:#x}) vs `{}` ({:#x})",
                        base.meta.name, base.meta.fingerprint, t.meta.name, t.meta.fingerprint
                    ),
                });
            }
            for (job, seq, line) in t.lines {
                match seen.get(&(job, seq)) {
                    None => {
                        seen.insert((job, seq), base.lines.len());
                        base.lines.push((job, seq, line));
                    }
                    Some(&i) if base.lines[i].2 == line => {}
                    Some(_) => {
                        return Err(TelemetryError::ConflictingDuplicate {
                            path: "<merge>".into(),
                            job,
                            seq,
                        });
                    }
                }
            }
        }
        Ok(base)
    }
}

/// An open, append-mode trace file. Each
/// [`append_job`](Self::append_job) writes one job's whole event block
/// and flushes it, so a crash costs at most the in-flight job's block
/// (a torn final line, dropped on load).
#[derive(Debug)]
pub struct TraceWriter {
    file: std::fs::File,
}

impl TraceWriter {
    /// Creates a fresh trace at `path`, writing (and flushing) the
    /// header. Refuses to overwrite an existing file.
    pub fn create(path: &Path, meta: &TraceMeta) -> Result<TraceWriter, TelemetryError> {
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::AlreadyExists {
                    TelemetryError::AlreadyExists {
                        path: path.display().to_string(),
                    }
                } else {
                    TelemetryError::io(path, e)
                }
            })?;
        let mut line = meta.trace_header();
        line.push('\n');
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| TelemetryError::io(path, e))?;
        Ok(TraceWriter { file })
    }

    /// Reopens an existing trace for appending: validates the header
    /// against `meta`, truncates away a torn final line, and seeks to
    /// the end. Returns the writer and the loaded prefix.
    pub fn resume(path: &Path, meta: &TraceMeta) -> Result<(TraceWriter, Trace), TelemetryError> {
        let trace = Trace::load(path)?;
        if trace.meta != *meta {
            return Err(TelemetryError::CampaignMismatch {
                path: path.display().to_string(),
                msg: format!(
                    "trace belongs to a different campaign (header name `{}`, fingerprint {:#x})",
                    trace.meta.name, trace.meta.fingerprint
                ),
            });
        }
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| TelemetryError::io(path, e))?;
        file.set_len(trace.valid_len)
            .map_err(|e| TelemetryError::io(path, e))?;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| TelemetryError::io(path, e))?;
        Ok((TraceWriter { file }, trace))
    }

    /// Appends one job's event block (one line per event, `seq` = ring
    /// position) and flushes. One `write_all` call keeps the torn-write
    /// window to a single job block.
    pub fn append_job(&mut self, job: usize, events: &[Event]) -> Result<(), TelemetryError> {
        let mut block = String::new();
        for (seq, ev) in events.iter().enumerate() {
            block.push_str(&render_event(job, seq, ev));
            block.push('\n');
        }
        self.file
            .write_all(block.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| TelemetryError::Io {
                path: "<trace>".into(),
                msg: e.to_string(),
            })
    }
}

/// Rewrites the trace at `path` into its canonical form (lines sorted
/// by `(job, seq)`, duplicates removed) via a sibling temp file and an
/// atomic rename. Called once a run completes successfully; after
/// this, traces of the same campaign are directly byte-comparable.
pub fn canonicalize(path: &Path) -> Result<(), TelemetryError> {
    let trace = Trace::load(path)?;
    let tmp = path.with_extension("canonical.tmp");
    std::fs::write(&tmp, trace.canonical_string()).map_err(|e| TelemetryError::io(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| TelemetryError::io(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta {
            name: "unit".into(),
            fingerprint: 0xdead_beef,
            seed: 18_446_744_073_709_551_615, // u64::MAX survives the string round-trip
            reps: 2,
            total_jobs: 4,
        }
    }

    #[test]
    fn header_roundtrip() {
        let m = meta();
        assert_eq!(TraceMeta::parse_trace_header(&m.trace_header()).unwrap(), m);
        assert_eq!(
            TraceMeta::parse_metrics_header(&m.metrics_header()).unwrap(),
            m
        );
        assert!(TraceMeta::parse_trace_header(&m.metrics_header()).is_err());
    }

    #[test]
    fn event_render_parse_roundtrip() {
        let evs = [
            Event::job_start(),
            Event::fault(3, target::R, 17, 52),
            Event::detect(4, via::TMR),
            Event::correct_forward(5),
            Event::correct_tmr(6, 2),
            Event::chunk_verify(7, false),
            Event::checkpoint(8, 6),
            Event::rollback(9, 6),
            Event::escalate(10),
            Event::converged(11, 9),
            Event::job_finish(12, 9, true, 0),
        ];
        for (seq, ev) in evs.iter().enumerate() {
            let line = render_event(2, seq, ev);
            let (job, s, back) = parse_event(&line).unwrap();
            assert_eq!((job, s, &back), (2, seq, ev), "line: {line}");
        }
    }

    #[test]
    fn write_load_canonicalize_and_merge() {
        let dir = std::env::temp_dir().join(format!("ftcg-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("t1.jsonl");
        let p2 = dir.join("t2.jsonl");
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
        let m = meta();
        let block = |it| vec![Event::job_start(), Event::job_finish(it, it, true, 0)];

        // Shard 1 writes jobs 1 then 0 (completion order ≠ index order).
        let mut w = TraceWriter::create(&p1, &m).unwrap();
        w.append_job(1, &block(5)).unwrap();
        w.append_job(0, &block(3)).unwrap();
        // Shard 2 writes jobs 3, 2 — plus a duplicate of job 1.
        let mut w2 = TraceWriter::create(&p2, &m).unwrap();
        w2.append_job(3, &block(7)).unwrap();
        w2.append_job(1, &block(5)).unwrap();
        w2.append_job(2, &block(6)).unwrap();
        drop((w, w2));

        // A torn tail is dropped on load...
        let mut f = std::fs::OpenOptions::new().append(true).open(&p1).unwrap();
        f.write_all(b"{\"job\":2,\"seq\":0,\"ev\":\"job_st")
            .unwrap();
        drop(f);
        let t1 = Trace::load(&p1).unwrap();
        assert!(t1.torn_tail);
        assert_eq!(t1.lines.len(), 4);

        // ...and resume truncates it away and keeps appending.
        let (mut w, replayed) = TraceWriter::resume(&p1, &m).unwrap();
        assert_eq!(replayed.lines.len(), 4);
        w.append_job(2, &block(6)).unwrap();
        w.append_job(3, &block(7)).unwrap();
        drop(w);

        // Merge of the two shard traces == canonical full trace.
        let merged = Trace::merge(vec![Trace::load(&p1).unwrap(), Trace::load(&p2).unwrap()])
            .unwrap()
            .canonical_string();
        canonicalize(&p1).unwrap();
        let t1c = std::fs::read_to_string(&p1).unwrap();
        // p1 saw all four jobs, so its canonical form is the campaign's.
        assert_eq!(t1c, merged);
        // Canonical form is sorted by (job, seq).
        let jobs: Vec<usize> = Trace::load(&p1)
            .unwrap()
            .parsed()
            .unwrap()
            .iter()
            .map(|(j, _, _)| *j)
            .collect();
        assert_eq!(jobs, vec![0, 0, 1, 1, 2, 2, 3, 3]);

        // Conflicting duplicates are an error.
        let mut f = std::fs::OpenOptions::new().append(true).open(&p1).unwrap();
        f.write_all(render_event(0, 0, &Event::escalate(9)).as_bytes())
            .unwrap();
        f.write_all(b"\n").unwrap();
        drop(f);
        assert!(matches!(
            Trace::load(&p1).unwrap_err(),
            TelemetryError::ConflictingDuplicate { job: 0, seq: 0, .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

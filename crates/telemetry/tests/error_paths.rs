//! Error-path contracts of the telemetry load paths: every way a trace
//! or metrics sidecar can be damaged on disk maps to a *matchable*
//! [`TelemetryError`] variant — never a panic, never a stringly error a
//! caller has to grep. Each test corrupts a real file the writers
//! produced and asserts the exact variant (and its payload) comes back.

use std::io::Write;
use std::path::PathBuf;

use ftcg_telemetry::hist::DurationHist;
use ftcg_telemetry::metrics::{MetricsFile, MetricsWriter};
use ftcg_telemetry::trace::{render_event, Trace, TraceWriter};
use ftcg_telemetry::{Event, JobTelemetry, Phase, TelemetryError, TraceMeta};

fn meta() -> TraceMeta {
    TraceMeta {
        name: "errtest".into(),
        fingerprint: 0x1234_5678,
        seed: 7,
        reps: 2,
        total_jobs: 4,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftcg-errtest-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn block(it: u64) -> Vec<Event> {
    vec![Event::job_start(), Event::job_finish(it, it, true, 0)]
}

fn tele(job: usize, step_ns: u64) -> JobTelemetry {
    let mut t = JobTelemetry {
        job,
        events: Vec::new(),
        dropped: 0,
        phase_ns: [0; Phase::COUNT],
        phase_calls: [0; Phase::COUNT],
        event_counts: [0; ftcg_telemetry::EventKind::COUNT],
        hist: [DurationHist::new(); Phase::COUNT],
        span: None,
    };
    t.phase_ns[Phase::Step.index()] = step_ns;
    t.phase_calls[Phase::Step.index()] = 2;
    t.hist[Phase::Step.index()].record(step_ns / 2);
    t
}

/// A valid two-job trace at `dir/name`, ready to be damaged.
fn write_trace(dir: &std::path::Path, name: &str) -> PathBuf {
    let p = dir.join(name);
    let mut w = TraceWriter::create(&p, &meta()).unwrap();
    w.append_job(0, &block(3)).unwrap();
    w.append_job(1, &block(5)).unwrap();
    p
}

#[test]
fn missing_and_empty_files_are_typed() {
    let dir = tmpdir("missing");
    let gone = dir.join("nope.jsonl");
    assert!(matches!(
        Trace::load(&gone).unwrap_err(),
        TelemetryError::Io { .. }
    ));
    assert!(matches!(
        MetricsFile::load(&gone).unwrap_err(),
        TelemetryError::Io { .. }
    ));
    let empty = dir.join("empty.jsonl");
    std::fs::write(&empty, "").unwrap();
    let err = Trace::load(&empty).unwrap_err();
    match &err {
        TelemetryError::Empty { path } => assert!(path.contains("empty.jsonl")),
        other => panic!("wrong variant: {other:?}"),
    }
    assert!(matches!(
        MetricsFile::load(&empty).unwrap_err(),
        TelemetryError::Empty { .. }
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_or_alien_headers_are_typed() {
    let dir = tmpdir("header");
    // A crash during file creation leaves a header with no newline.
    let torn = dir.join("torn.jsonl");
    std::fs::write(&torn, "{\"ftcg_trace\":1,\"na").unwrap();
    assert!(matches!(
        Trace::load(&torn).unwrap_err(),
        TelemetryError::Header { .. }
    ));
    std::fs::write(&torn, "{\"ftcg_metrics\":1,\"na").unwrap();
    assert!(matches!(
        MetricsFile::load(&torn).unwrap_err(),
        TelemetryError::Header { .. }
    ));
    // A complete header of the *wrong* file kind is also a header error
    // (a metrics sidecar is not a trace), as is a future version.
    let alien = dir.join("alien.jsonl");
    std::fs::write(&alien, format!("{}\n", meta().metrics_header())).unwrap();
    assert!(matches!(
        Trace::load(&alien).unwrap_err(),
        TelemetryError::Header { .. }
    ));
    let future = dir.join("future.jsonl");
    std::fs::write(
        &future,
        meta().trace_header().replacen(":1,", ":999,", 1) + "\n",
    )
    .unwrap();
    match Trace::load(&future).unwrap_err() {
        TelemetryError::Header { msg, .. } => assert!(msg.contains("999"), "{msg}"),
        other => panic!("wrong variant: {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn malformed_body_lines_carry_their_byte_offset() {
    let dir = tmpdir("malformed");
    let p = write_trace(&dir, "t.jsonl");
    let good_len = std::fs::metadata(&p).unwrap().len() as usize;
    let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
    f.write_all(b"{\"job\":0,\"seq\":9,\"ev\":\"not_a_kind\"}\n")
        .unwrap();
    drop(f);
    match Trace::load(&p).unwrap_err() {
        TelemetryError::Malformed { offset, msg, .. } => {
            assert_eq!(offset, good_len, "offset points at the bad line");
            assert!(msg.contains("not_a_kind"), "{msg}");
        }
        other => panic!("wrong variant: {other:?}"),
    }
    // Same contract on the sidecar: a line missing a required field.
    let mp = dir.join("m.jsonl");
    let mut w = MetricsWriter::create(&mp, &meta()).unwrap();
    w.append_job(&tele(0, 4000)).unwrap();
    drop(w);
    let good_len = std::fs::metadata(&mp).unwrap().len() as usize;
    let mut f = std::fs::OpenOptions::new().append(true).open(&mp).unwrap();
    f.write_all(b"{\"job\":1}\n").unwrap();
    drop(f);
    match MetricsFile::load(&mp).unwrap_err() {
        TelemetryError::Malformed { offset, msg, .. } => {
            assert_eq!(offset, good_len);
            assert!(msg.contains("ns"), "{msg}");
        }
        other => panic!("wrong variant: {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn out_of_range_jobs_are_rejected_with_the_declared_total() {
    let dir = tmpdir("range");
    let p = write_trace(&dir, "t.jsonl");
    let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
    let mut line = render_event(9, 0, &Event::job_start());
    line.push('\n');
    f.write_all(line.as_bytes()).unwrap();
    drop(f);
    match Trace::load(&p).unwrap_err() {
        TelemetryError::JobOutOfRange { job, total, .. } => {
            assert_eq!((job, total), (9, 4));
        }
        other => panic!("wrong variant: {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn conflicting_duplicates_are_an_error_but_reruns_are_benign() {
    let dir = tmpdir("dup");
    let p = write_trace(&dir, "t.jsonl");
    // Byte-identical re-appended block (a crash replay): fine.
    let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
    for (seq, ev) in block(3).iter().enumerate() {
        let mut line = render_event(0, seq, ev);
        line.push('\n');
        f.write_all(line.as_bytes()).unwrap();
    }
    drop(f);
    assert_eq!(Trace::load(&p).unwrap().lines.len(), 4);
    // Same (job, seq) with different bytes: typed conflict.
    let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
    let mut line = render_event(0, 1, &Event::job_finish(99, 99, false, 0));
    line.push('\n');
    f.write_all(line.as_bytes()).unwrap();
    drop(f);
    assert!(matches!(
        Trace::load(&p).unwrap_err(),
        TelemetryError::ConflictingDuplicate { job: 0, seq: 1, .. }
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merge_rejects_mismatched_campaigns_and_cross_shard_conflicts() {
    let dir = tmpdir("merge");
    assert!(matches!(
        Trace::merge(Vec::new()).unwrap_err(),
        TelemetryError::NoInput
    ));
    let p1 = write_trace(&dir, "a.jsonl");
    // A shard of a different campaign refuses to merge.
    let other = dir.join("other.jsonl");
    let mut m2 = meta();
    m2.fingerprint = 0x9999;
    let w = TraceWriter::create(&other, &m2).unwrap();
    drop(w);
    let err = Trace::merge(vec![
        Trace::load(&p1).unwrap(),
        Trace::load(&other).unwrap(),
    ])
    .unwrap_err();
    match err {
        TelemetryError::CampaignMismatch { path, .. } => assert_eq!(path, "<merge>"),
        other => panic!("wrong variant: {other:?}"),
    }
    // Two shards disagreeing on a (job, seq) line is a conflict tagged
    // with the merge pseudo-path.
    let p2 = dir.join("b.jsonl");
    let mut w = TraceWriter::create(&p2, &meta()).unwrap();
    w.append_job(0, &block(77)).unwrap();
    drop(w);
    match Trace::merge(vec![Trace::load(&p1).unwrap(), Trace::load(&p2).unwrap()]).unwrap_err() {
        TelemetryError::ConflictingDuplicate { path, job: 0, .. } => assert_eq!(path, "<merge>"),
        other => panic!("wrong variant: {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn create_refuses_to_clobber_and_resume_refuses_alien_files() {
    let dir = tmpdir("clobber");
    let p = write_trace(&dir, "t.jsonl");
    assert!(matches!(
        TraceWriter::create(&p, &meta()).unwrap_err(),
        TelemetryError::AlreadyExists { .. }
    ));
    let mut m2 = meta();
    m2.name = "someone-else".into();
    assert!(matches!(
        TraceWriter::resume(&p, &m2).unwrap_err(),
        TelemetryError::CampaignMismatch { .. }
    ));
    let mp = dir.join("m.jsonl");
    let w = MetricsWriter::create(&mp, &meta()).unwrap();
    drop(w);
    assert!(matches!(
        MetricsWriter::create(&mp, &meta()).unwrap_err(),
        TelemetryError::AlreadyExists { .. }
    ));
    assert!(matches!(
        MetricsWriter::resume(&mp, &m2).unwrap_err(),
        TelemetryError::CampaignMismatch { .. }
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sidecar_torn_tail_drops_and_duplicate_jobs_last_win() {
    let dir = tmpdir("sidecar");
    let mp = dir.join("m.jsonl");
    let mut w = MetricsWriter::create(&mp, &meta()).unwrap();
    w.append_job(&tele(0, 4000)).unwrap();
    w.append_job(&tele(1, 6000)).unwrap();
    // A re-run of job 0 after a crash appends a second line: on load
    // the *last* occurrence wins (the re-run's timings are the ones the
    // completed campaign actually spent).
    w.append_job(&tele(0, 9000)).unwrap();
    drop(w);
    let mut f = std::fs::OpenOptions::new().append(true).open(&mp).unwrap();
    f.write_all(b"{\"job\":2,\"ns\":{\"st").unwrap();
    drop(f);
    let mf = MetricsFile::load(&mp).unwrap();
    assert!(mf.torn_tail);
    assert_eq!(mf.jobs.len(), 2);
    let j0 = mf.jobs.iter().find(|j| j.job == 0).unwrap();
    assert_eq!(j0.ns[Phase::Step.index()], 9000);
    // Resume truncates the torn tail away and keeps the file appendable;
    // the accumulator picks up where the last durable summary left off.
    let mut w = MetricsWriter::resume(&mp, &meta()).unwrap();
    w.append_job(&tele(2, 5000)).unwrap();
    w.finish().unwrap();
    drop(w);
    let mf = MetricsFile::load(&mp).unwrap();
    assert!(!mf.torn_tail);
    assert_eq!(mf.jobs.len(), 3);
    assert!(mf.hist.is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Anatomy of the ABFT-protected SpMxV (Algorithm 2): corrupt each part
//! of the CSR representation and the vectors in turn, and watch the
//! checksums localize and repair the error.
//!
//! Run with: `cargo run --release --example abft_spmv`

use ftcg::abft::{ProtectedSpmv, SpmvOutcome, XRef};
use ftcg::prelude::*;

fn show(outcome: &SpmvOutcome) -> String {
    match outcome {
        SpmvOutcome::Clean => "clean (no error)".to_string(),
        SpmvOutcome::Corrected(rep) => format!("CORRECTED {:?}", rep.kind),
        SpmvOutcome::Detected(_) => "DETECTED (uncorrectable, would roll back)".to_string(),
    }
}

fn main() {
    let a = gen::random_spd(200, 0.05, 1).expect("valid generator input");
    let n = a.n_rows();
    println!("matrix: n = {n}, nnz = {}\n", a.nnz());

    // Reliable setup: once per matrix.
    let protected = ProtectedSpmv::new(&a);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 1.0).collect();
    let xref = XRef::capture(&x);
    let clean_y = a.spmv(&x);

    type Corruptor<'a> = &'a dyn Fn(&mut CsrMatrix, &mut Vec<f64>, &mut Vec<f64>);
    let run = |label: &str, corrupt: Corruptor| {
        let mut am = a.clone();
        let mut xm = x.clone();
        let mut y = vec![0.0; n];
        protected.spmv(&am, &xm, &mut y);
        corrupt(&mut am, &mut xm, &mut y);
        // If the corruption hit an input, the product must be redone; the
        // driver does that by re-running the kernel before verification.
        let res = protected.verify(&am, &xm, &xref, &y);
        let outcome = if res.clean() {
            SpmvOutcome::Clean
        } else {
            protected.correct(&mut am, &mut xm, &xref, &mut y, &res)
        };
        let max_err = y
            .iter()
            .zip(clean_y.iter())
            .map(|(u, v)| (u - v).abs())
            .fold(0.0_f64, f64::max);
        println!(
            "{label:<42} -> {:<40} residual error {max_err:.2e}",
            show(&outcome)
        );
    };

    println!("single errors (all recovered forward):");
    run("no corruption", &|_, _, _| {});
    run("Val[17] += 2.5 (matrix value)", &|am, _, y| {
        am.val_mut()[17] += 2.5;
        // recompute with the corrupted matrix, as the driver would
        ftcg::abft::spmv::spmv_defensive(am, &x, y);
    });
    run("Colid[40] redirected (matrix structure)", &|am, _, y| {
        am.colid_mut()[40] = (am.colid()[40] + 13) % 200;
        ftcg::abft::spmv::spmv_defensive(am, &x, y);
    });
    run("Rowidx[60] += 3 (row pointer)", &|am, _, y| {
        am.rowptr_mut()[60] += 3;
        ftcg::abft::spmv::spmv_defensive(am, &x, y);
    });
    run("x[99] sign flip (input vector)", &|am, xm, y| {
        xm[99] = -xm[99];
        ftcg::abft::spmv::spmv_defensive(am, xm, y);
    });
    run("y[150] exponent flip (output/computation)", &|_, _, y| {
        y[150] = f64::from_bits(y[150].to_bits() ^ (1 << 62));
    });

    println!("\ndouble errors (detected, rollback required):");
    run("two Val entries corrupted", &|am, _, y| {
        am.val_mut()[3] += 1.0;
        am.val_mut()[90] -= 2.0;
        ftcg::abft::spmv::spmv_defensive(am, &x, y);
    });
    run("Val and x corrupted together", &|am, xm, y| {
        am.val_mut()[5] += 1.0;
        xm[10] += 1.0;
        ftcg::abft::spmv::spmv_defensive(am, xm, y);
    });
}

//! Prints bit-exact fingerprints of plain and resilient solves
//! (used to compare refactors against the historical implementation).

use ftcg::model::Scheme;
use ftcg::prelude::*;
use ftcg::solvers::resilient::{solve_resilient, ResilientConfig};
use ftcg::solvers::{bicgstab_solve, cg_solve, CgConfig};

fn bits(v: &[f64]) -> u64 {
    v.iter().fold(0u64, |acc, x| {
        acc.rotate_left(7) ^ x.to_bits() ^ acc.wrapping_mul(0x9E3779B97F4A7C15)
    })
}

fn main() {
    let a = gen::random_spd(150, 0.05, 9).unwrap();
    let b: Vec<f64> = (0..150).map(|i| 1.0 + (i as f64 * 0.37).sin()).collect();

    for (name, s) in [
        (
            "cg",
            cg_solve(&a, &b, &vec![0.0; 150], &CgConfig::default()),
        ),
        (
            "pcg",
            ftcg::solvers::pcg_jacobi_solve(&a, &b, &vec![0.0; 150], &CgConfig::default()),
        ),
        (
            "bicgstab",
            bicgstab_solve(&a, &b, &vec![0.0; 150], &CgConfig::default()),
        ),
        (
            "cgne",
            ftcg::solvers::cgne_solve(&a, &b, &vec![0.0; 150], &CgConfig::default()),
        ),
    ] {
        println!(
            "plain {name}: it={} conv={} res={:016x} x={:016x}",
            s.iterations,
            s.converged,
            s.residual_norm.to_bits(),
            bits(&s.x)
        );
    }

    for scheme in Scheme::ALL {
        for alpha in [0.0, 1.0 / 16.0, 1.0 / 8.0, 0.5] {
            for seed in 0..6u64 {
                let mut cfg = ResilientConfig::new(scheme, 7);
                if scheme == Scheme::OnlineDetection {
                    cfg.verif_interval = 4;
                }
                let out = if alpha > 0.0 {
                    let mut inj = ftcg::sim::runner::paper_injector(&a, alpha, seed);
                    solve_resilient(&a, &b, &cfg, Some(&mut inj))
                } else {
                    solve_resilient(&a, &b, &cfg, None)
                };
                println!(
                    "{scheme:?} a={alpha} s={seed}: conv={} prod={} exec={} t={:016x} ck={} rb={} fc={} tc={} det={} faults={} x={:016x}",
                    out.converged,
                    out.productive_iterations,
                    out.executed_iterations,
                    out.simulated_time.to_bits(),
                    out.checkpoints,
                    out.rollbacks,
                    out.forward_corrections,
                    out.tmr_corrections,
                    out.detections,
                    out.ledger.len(),
                    bits(&out.x)
                );
            }
        }
    }
}

//! Campaign engine walkthrough: declare an experiment grid, run it
//! concurrently, and render the aggregated results.
//!
//! Run with: `cargo run --release --example campaign`

use ftcg::engine::sink;
use ftcg::prelude::*;

fn main() {
    // A grid of 2 matrices × 3 schemes × 3 fault rates = 18
    // configurations, 10 repetitions each. The same text could live in
    // a file and run via `ftcg campaign --spec grid.campaign`.
    let spec = CampaignSpec::parse(
        "name     = example-sweep\n\
         seed     = 2015\n\
         reps     = 10\n\
         threads  = 0            # all cores\n\
         matrices = poisson2d:24, illcond:300:0.03:400:7\n\
         schemes  = online, detection, correction\n\
         alphas   = 1/64, 1/16, 1/4\n",
    )
    .expect("spec parses");
    println!(
        "running `{}`: {} configurations x {} reps = {} jobs\n",
        spec.name,
        spec.n_configs(),
        spec.reps,
        spec.n_jobs()
    );

    let result = run_campaign(&spec, &DefaultResolver, None).expect("campaign runs");

    println!(
        "{:<26} {:<16} {:>7} {:>5} {:>9} {:>8} {:>9} {:>6}",
        "matrix", "scheme", "alpha", "s", "time", "±std", "rollbacks", "conv"
    );
    for row in &result.summaries {
        println!(
            "{:<26} {:<16} {:>7.4} {:>5} {:>9.1} {:>8.1} {:>9.2} {:>6.2}",
            row.matrix,
            row.scheme,
            row.alpha,
            row.s,
            row.time.mean,
            row.time.std,
            row.mean_rollbacks,
            row.convergence_rate
        );
    }
    println!(
        "\n{} jobs on {} threads in {:.2}s",
        result.total_jobs, result.threads, result.elapsed_secs
    );

    // Artifacts are byte-deterministic: same spec + seed ⇒ same bytes.
    sink::save_jsonl("campaign_example.jsonl", &result.summaries).expect("write jsonl");
    sink::save_csv("campaign_example.csv", &result.summaries).expect("write csv");
    println!("wrote campaign_example.jsonl / campaign_example.csv");
}

//! Regenerates Figure 1 of the paper: execution time of the three
//! schemes against the normalized MTBF `1/α`, one panel per matrix.
//!
//! Run with:
//! `cargo run --release --example figure1 [-- --scale 16 --reps 50 --points 7 --threads 8 --matrices 3]`

use ftcg::sim::figure1::{log_grid, run_panel, Figure1Params};
use ftcg::sim::report::{figure1_ascii, figure1_csv};
use ftcg::sim::PAPER_MATRICES;

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_matrices = parse_flag(&args, "--matrices", PAPER_MATRICES.len());
    let params = Figure1Params {
        scale: parse_flag(&args, "--scale", 16),
        reps: parse_flag(&args, "--reps", 50),
        mtbf_grid: log_grid(2e1, 2e4, parse_flag(&args, "--points", 7)),
        threads: parse_flag(&args, "--threads", 8),
        ..Figure1Params::default()
    };
    eprintln!(
        "Figure 1: scale=1/{}, reps={}, {} MTBF points, {} matrices\n",
        params.scale,
        params.reps,
        params.mtbf_grid.len(),
        n_matrices
    );

    let mut panels = Vec::new();
    for spec in PAPER_MATRICES.iter().take(n_matrices) {
        eprintln!("running matrix #{} ...", spec.id);
        let panel = run_panel(spec, &params);
        println!("{}", figure1_ascii(&panel, 64, 14));
        panels.push(panel);
    }

    let path = "figure1.csv";
    std::fs::write(path, figure1_csv(&panels)).expect("write csv");
    eprintln!("wrote {path}");

    // Check the paper's qualitative findings on the collected data.
    let mut correction_wins = 0usize;
    let mut total = 0usize;
    for p in &panels {
        let time_at = |scheme_idx: usize, pt: usize| p.curves[scheme_idx].1[pt].mean_time;
        // Low-MTBF third of the grid (several faults per run): the
        // paper's regime where ABFT-CORRECTION (idx 2) wins.
        for pt in 0..p.curves[0].1.len().div_ceil(3) {
            total += 1;
            if time_at(2, pt) <= time_at(0, pt) && time_at(2, pt) <= time_at(1, pt) {
                correction_wins += 1;
            }
        }
    }
    eprintln!(
        "\nABFT-CORRECTION fastest at {correction_wins}/{total} high-fault-rate points \
         (paper: wins for a wide range of fault rates)"
    );
}

//! Quickstart: solve an SPD system with forward+backward recovery while
//! silent errors strike, and compare the three schemes of the paper.
//!
//! Run with: `cargo run --release --example quickstart`

use ftcg::prelude::*;

fn main() {
    // A 2-D Poisson problem (the classic CG benchmark), n = 3600.
    let a = gen::poisson2d(60).expect("valid grid");
    let n = a.n_rows();
    println!(
        "system: 2-D Poisson, n = {}, nnz = {}, density = {:.2e}",
        n,
        a.nnz(),
        a.density()
    );

    // Manufactured solution so we can measure the true error.
    let xstar: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) * 0.1).collect();
    let b = a.spmv(&xstar);

    // Fault rate: one expected silent error every 16 iterations.
    let alpha = 1.0 / 16.0;
    println!(
        "fault rate: alpha = {alpha} (normalized MTBF = {} iterations)\n",
        1.0 / alpha
    );

    println!(
        "{:<18} {:>6} {:>9} {:>9} {:>7} {:>9} {:>9} {:>10}",
        "scheme", "iters", "executed", "time", "ckpts", "rollback", "corrected", "error"
    );
    for scheme in Scheme::ALL {
        let out = ftcg::ResilientCg::new(&a)
            .scheme(scheme)
            .fault_alpha(alpha)
            .seed(2015)
            .solve(&b);
        let err = out
            .x
            .iter()
            .zip(xstar.iter())
            .map(|(u, v)| (u - v).abs())
            .fold(0.0_f64, f64::max);
        println!(
            "{:<18} {:>6} {:>9} {:>9.1} {:>7} {:>9} {:>9} {:>10.2e}",
            scheme.name(),
            out.productive_iterations,
            out.executed_iterations,
            out.simulated_time,
            out.checkpoints,
            out.rollbacks,
            out.forward_corrections + out.tmr_corrections,
            err
        );
        assert!(out.converged, "{} failed to converge", scheme.name());
    }

    println!("\nAll three schemes converged to the true solution despite the injected");
    println!("bit flips; ABFT-CORRECTION does it with (almost) no rollbacks — that is");
    println!("the paper's central claim.");
}

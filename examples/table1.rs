//! Regenerates Table 1 of the paper: validation of the performance model
//! (model-optimal checkpoint interval `s̃` vs empirically best `s*`).
//!
//! Run with:
//! `cargo run --release --example table1 [-- --scale 16 --reps 50 --threads 8]`
//!
//! `--scale 1` uses the full published matrix sizes (slow);
//! the default miniature scale preserves the per-row density profile.

use ftcg::sim::report::{table1_csv, table1_markdown};
use ftcg::sim::table1::{run_table1, Table1Params};
use ftcg::sim::PAPER_MATRICES;

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let params = Table1Params {
        scale: parse_flag(&args, "--scale", 16),
        reps: parse_flag(&args, "--reps", 50),
        threads: parse_flag(&args, "--threads", 8),
        ..Table1Params::default()
    };
    eprintln!(
        "Table 1: scale=1/{}, reps={}, alpha=1/16, threads={}",
        params.scale, params.reps, params.threads
    );
    eprintln!(
        "(this sweeps {} checkpoint intervals per matrix and scheme)\n",
        params.sweep.len()
    );

    let rows = run_table1(&PAPER_MATRICES, &params);

    println!("{}", table1_markdown(&rows));

    let csv = table1_csv(&rows);
    let path = "table1.csv";
    std::fs::write(path, &csv).expect("write csv");
    eprintln!("wrote {path}");

    // The paper's headline observations, checked programmatically:
    let max_gap = rows
        .iter()
        .map(|r| (r.s_model as f64 - r.s_best as f64).abs())
        .fold(0.0_f64, f64::max);
    eprintln!("\nmax |s_model − s_best| = {max_gap} (paper: values are close)");
    let mean_loss = rows.iter().map(|r| r.loss_pct).sum::<f64>() / rows.len() as f64;
    eprintln!("mean loss l = {mean_loss:.2}% (paper: small on average, noisy outliers)");
}

//! The zero-column-sum failure mode and the paper's shifted-checksum fix
//! (Section 3.2).
//!
//! Shantharam et al.'s single-checksum scheme requires strict diagonal
//! dominance: on a graph Laplacian every column sums to zero, so an
//! error in the input vector is invisible to the plain checksum. The
//! paper shifts every checksum entry by a constant `k` (balanced by an
//! auxiliary output checksum), restoring detection for *any* matrix.
//!
//! Run with: `cargo run --release --example zero_column_sums`

use ftcg::abft::{SingleChecksum, XRef};
use ftcg::prelude::*;

fn main() {
    // A graph Laplacian: symmetric positive *semi*-definite, all column
    // sums exactly zero — the adversarial case for plain checksums.
    let a = gen::graph_laplacian(500, 1500, 0.0, 7).expect("valid generator input");
    let n = a.n_rows();
    let colsum_max = a.column_sums().iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    println!("graph Laplacian: n = {n}, nnz = {}", a.nnz());
    println!("largest |column sum| = {colsum_max:.2e} (all zero)\n");

    let unshifted = SingleChecksum::with_shift(&a, false);
    let shifted = SingleChecksum::with_shift(&a, true);
    println!("unshifted scheme: k = {}", unshifted.shift());
    println!("shifted scheme:   k = {}\n", shifted.shift());

    let x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.11).cos()).collect();
    let xref = XRef::capture(&x);

    let mut missed = 0usize;
    let mut caught = 0usize;
    let trials = 200;
    for t in 0..trials {
        let e = (t * 7919) % n; // spread error positions around
        let mut xc = x.clone();
        xc[e] += 100.0; // a large input error
        let mut y = vec![0.0; n];

        let out_plain = unshifted.spmv_detect(&a, &xc, &xref, &mut y);
        let out_shift = shifted.spmv_detect(&a, &xc, &xref, &mut y);

        if out_plain.is_trusted() {
            missed += 1; // the plain checksum saw nothing!
        }
        if !out_shift.is_trusted() {
            caught += 1;
        }
    }

    println!("{trials} large input-vector errors injected:");
    println!("  unshifted checksum missed  {missed}/{trials}");
    println!("  shifted checksum caught    {caught}/{trials}");
    assert_eq!(
        missed, trials,
        "zero column sums hide every x error from the plain checksum"
    );
    assert_eq!(caught, trials, "the shift restores detection");
    println!("\nThe shift turns a 100% miss rate into a 100% detection rate —");
    println!("without requiring diagonal dominance of the matrix.");
}

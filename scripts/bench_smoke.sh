#!/usr/bin/env bash
# Observatory smoke: record a quick-suite bench entry with the real
# binary, prove the entry's non-timing fields are reproducible, and
# pin the regression gate's exit-code contract deterministically
# (self-vs-self is 0; an impossibly fast baseline trips it; --warn-only
# makes it advisory). Legacy-file migration rides along.
# Usage: scripts/bench_smoke.sh [path-to-ftcg-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release/ftcg}"
if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (run cargo build --release first)" >&2
    exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "-- record the quick suite (2 timing runs)"
"$BIN" bench --suite quick --runs 2 --seed 1 --out "$tmp/a.json"
grep -q '"ftcg_bench": 1' "$tmp/a.json"
grep -q '"suite": "quick"' "$tmp/a.json"

echo "-- non-timing fields are reproducible across recordings"
"$BIN" bench --suite quick --runs 2 --seed 1 --out "$tmp/b.json" 2> /dev/null
for f in a b; do
    grep -oE '"(id|suite|key|unit|lower_is_better)": ?[^,}]*' "$tmp/$f.json" \
        > "$tmp/$f.shape"
    grep '"spec"' "$tmp/$f.json" >> "$tmp/$f.shape"
done
cmp "$tmp/a.shape" "$tmp/b.shape"
echo "   ids, measurement keys/units/directions, and specs identical"

echo "-- self-compare is exactly zero delta (exit 0)"
"$BIN" bench compare "$tmp/a.json" "$tmp/a.json" > /dev/null

echo "-- kernels suite records the fused measurement group"
"$BIN" bench --suite kernels --runs 2 --seed 1 --out "$tmp/k.json"
for key in kernels.sweep_separate_ns_per_iter kernels.sweep_fused_ns_per_iter \
           kernels.sweep_fused_speedup kernels.probe_two_pass_ns_per_nnz \
           kernels.probe_fused_ns_per_nnz kernels.probe_fused_speedup; do
    grep -q "\"$key\"" "$tmp/k.json" || {
        echo "error: $key missing from kernels entry" >&2
        exit 1
    }
done
"$BIN" bench compare "$tmp/k.json" "$tmp/k.json" > /dev/null
echo "   fused separate-vs-fused keys present; self-compare exit 0"

echo "-- migrate a legacy hand-written file to the schema"
cat > "$tmp/legacy.json" <<'EOF'
{
  "date": "2026-01-01",
  "pr": 1,
  "label": "synthetic impossibly-fast baseline",
  "host": {"cores": 1},
  "campaign_throughput": {
    "suite": "synthetic",
    "total_jobs": 24,
    "threads": 1,
    "elapsed_secs": 0.000001,
    "reps_per_sec": 1000000000.0
  }
}
EOF
"$BIN" bench migrate "$tmp/legacy.json" --out "$tmp/fast.json"
grep -q '"ftcg_bench": 1' "$tmp/fast.json"

echo "-- a real entry vs the impossibly fast baseline must trip the gate"
rc=0
"$BIN" bench compare "$tmp/a.json" "$tmp/fast.json" > /dev/null 2>&1 || rc=$?
if [ "$rc" != 1 ]; then
    echo "error: expected exit 1 from the regression gate, got $rc" >&2
    exit 1
fi
echo "   gate tripped with exit 1"

echo "-- --warn-only downgrades the same regression to advisory (exit 0)"
"$BIN" bench compare "$tmp/a.json" "$tmp/fast.json" --warn-only > /dev/null

echo "-- bench --against gates a fresh run and still appends to --out"
"$BIN" bench --suite quick --runs 1 --seed 1 \
    --against "$tmp/a.json" --warn-only --out "$tmp/a.json" > /dev/null
entries="$(grep -c '"suite": "quick"' "$tmp/a.json")"
if [ "$entries" != 2 ]; then
    echo "error: expected 2 entries after append, got $entries" >&2
    exit 1
fi
echo "   baseline file now holds $entries entries"

echo "bench observatory smoke passed."

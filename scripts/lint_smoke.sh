#!/usr/bin/env bash
# Static-analysis smoke: prove the ftcg-lint gate actually gates.
# Three contracts: the checked-in tree lints clean (exit 0); a seeded
# violation of every rule fails with the expected rule IDs in both the
# human and --json output; a stale waiver alone fails the run.
# Usage: scripts/lint_smoke.sh [path-to-ftcg-lint-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release/ftcg-lint}"
if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (run cargo build --release first)" >&2
    exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "-- the checked-in workspace lints clean (exit 0)"
"$BIN" | tail -1
"$BIN" --json > "$tmp/clean.json"
grep -q '"ftcg_lint":1' "$tmp/clean.json"
grep -q '"clean":true' "$tmp/clean.json"

echo "-- --list-rules names all six rules"
"$BIN" --list-rules > "$tmp/rules.txt"
for rule in DET-WALLCLOCK DET-HASH-ITER ALLOC-HOTPATH PANIC-LIB \
            UNSAFE-AUDIT CAST-NARROW; do
    grep -q "^$rule" "$tmp/rules.txt" || {
        echo "error: $rule missing from --list-rules" >&2
        exit 1
    }
done

echo "-- seed a mini-workspace violating every rule"
mkdir -p "$tmp/bad/crates/demo/src"
cat > "$tmp/bad/crates/demo/src/lib.rs" <<'EOF'
use std::time::Instant;
use std::collections::HashMap;

pub fn hot(v: &[f64], p: *const f64) -> f64 {
    let copy = v.to_vec();
    let first = copy.first().unwrap();
    let narrowed = copy.len() as u32;
    first + f64::from(narrowed) + unsafe { *p }
}
EOF
cat > "$tmp/bad/lint.toml" <<'EOF'
[rules.det-hash-iter]
modules = ["crates/demo/src/lib.rs"]
[rules.alloc-hotpath]
modules = ["crates/demo/src/lib.rs"]
EOF

echo "-- every rule fires, exit is 1, human and --json agree"
rc=0
"$BIN" --root "$tmp/bad" > "$tmp/bad.txt" 2>&1 || rc=$?
if [ "$rc" != 1 ]; then
    echo "error: expected exit 1 from seeded violations, got $rc" >&2
    cat "$tmp/bad.txt" >&2
    exit 1
fi
rc=0
"$BIN" --root "$tmp/bad" --json > "$tmp/bad.json" 2>&1 || rc=$?
if [ "$rc" != 1 ]; then
    echo "error: expected exit 1 from --json run, got $rc" >&2
    exit 1
fi
grep -q '"clean":false' "$tmp/bad.json"
for rule in DET-WALLCLOCK DET-HASH-ITER ALLOC-HOTPATH PANIC-LIB \
            UNSAFE-AUDIT CAST-NARROW; do
    grep -q "\[$rule\]" "$tmp/bad.txt" || {
        echo "error: $rule missing from human output" >&2
        cat "$tmp/bad.txt" >&2
        exit 1
    }
    grep -q "\"rule\":\"$rule\"" "$tmp/bad.json" || {
        echo "error: $rule missing from --json output" >&2
        exit 1
    }
done
echo "   all six rule IDs present in both renderings"

echo "-- --json is machine-parseable"
if command -v python3 > /dev/null 2>&1; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$tmp/bad.json"
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$tmp/clean.json"
    echo "   parsed with python3 json"
else
    echo "   python3 unavailable; skipped strict parse"
fi

echo "-- a stale waiver alone fails an otherwise-clean tree"
mkdir -p "$tmp/stale/crates/demo/src"
echo 'pub fn ok() {}' > "$tmp/stale/crates/demo/src/lib.rs"
cat > "$tmp/stale/lint.toml" <<'EOF'
[[waiver]]
rule = "PANIC-LIB"
file = "crates/demo/src/lib.rs"
needle = "was fixed long ago"
reason = "pins a finding that no longer exists"
EOF
rc=0
"$BIN" --root "$tmp/stale" > "$tmp/stale.txt" 2>&1 || rc=$?
if [ "$rc" != 1 ]; then
    echo "error: expected exit 1 from a stale waiver, got $rc" >&2
    cat "$tmp/stale.txt" >&2
    exit 1
fi
grep -q "stale waiver" "$tmp/stale.txt"
echo "   stale waiver tripped the gate"

echo "-- a stale scoping entry fails too"
cat > "$tmp/stale/lint.toml" <<'EOF'
[rules.alloc-hotpath]
modules = ["crates/demo/src/renamed_away.rs"]
EOF
rc=0
"$BIN" --root "$tmp/stale" > "$tmp/stale2.txt" 2>&1 || rc=$?
if [ "$rc" != 1 ]; then
    echo "error: expected exit 1 from a stale config entry, got $rc" >&2
    exit 1
fi
grep -q "stale config entry" "$tmp/stale2.txt"
echo "   stale config entry tripped the gate"

echo "lint smoke passed."

#!/usr/bin/env bash
# Shard → merge → diff smoke: k independent `ftcg campaign --shard i/k`
# processes plus `ftcg merge` must reproduce a single-process run's
# JSONL/CSV artifacts byte for byte, and a resumed run must too.
# Usage: scripts/shard_smoke.sh [path-to-ftcg-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release/ftcg}"
if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (run cargo build --release first)" >&2
    exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/smoke.campaign" <<'EOF'
name     = shard-smoke
seed     = 7
reps     = 4
matrices = poisson2d:12
schemes  = detection, correction
alphas   = 0, 1/16
EOF

echo "-- single-process reference (2 threads)"
"$BIN" campaign --spec "$tmp/smoke.campaign" --threads 2 --quiet \
    --out "$tmp/single.jsonl" --csv "$tmp/single.csv"

echo "-- two shards (1 thread each), then merge"
"$BIN" campaign --spec "$tmp/smoke.campaign" --threads 1 --quiet \
    --shard 0/2 --journal "$tmp/shard0.jsonl"
"$BIN" campaign --spec "$tmp/smoke.campaign" --threads 1 --quiet \
    --shard 1/2 --journal "$tmp/shard1.jsonl"
"$BIN" merge --spec "$tmp/smoke.campaign" "$tmp/shard0.jsonl" "$tmp/shard1.jsonl" \
    --out "$tmp/merged.jsonl" --csv "$tmp/merged.csv"

cmp "$tmp/single.jsonl" "$tmp/merged.jsonl"
cmp "$tmp/single.csv" "$tmp/merged.csv"
echo "   shard → merge artifacts byte-identical"

echo "-- kill-then-resume (journal truncated mid-line)"
"$BIN" campaign --spec "$tmp/smoke.campaign" --threads 2 --quiet \
    --journal "$tmp/full.jsonl" --out /dev/null
# Simulate the crash: keep the manifest + 5 records + a torn 6th line.
head -c "$(($(head -7 "$tmp/full.jsonl" | wc -c) - 20))" "$tmp/full.jsonl" > "$tmp/crashed.jsonl"
"$BIN" campaign --spec "$tmp/smoke.campaign" --threads 2 --quiet \
    --journal "$tmp/crashed.jsonl" --resume --out "$tmp/resumed.jsonl" --csv "$tmp/resumed.csv"

cmp "$tmp/single.jsonl" "$tmp/resumed.jsonl"
cmp "$tmp/single.csv" "$tmp/resumed.csv"
echo "   resume artifacts byte-identical"

echo "shard/merge/resume smoke passed."

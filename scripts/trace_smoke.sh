#!/usr/bin/env bash
# Telemetry smoke: a traced campaign must (a) leave the JSONL/CSV
# artifacts byte-identical to an untraced run, (b) produce a canonical
# event trace that is byte-identical across thread counts, and
# (c) reconcile with its journal under `ftcg report`.
# Usage: scripts/trace_smoke.sh [path-to-ftcg-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release/ftcg}"
if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (run cargo build --release first)" >&2
    exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/smoke.campaign" <<'EOF'
name     = trace-smoke
seed     = 13
reps     = 4
matrices = poisson2d:12
schemes  = detection, correction
alphas   = 0, 1/16
EOF

echo "-- untraced reference (2 threads)"
"$BIN" campaign --spec "$tmp/smoke.campaign" --threads 2 --quiet \
    --out "$tmp/plain.jsonl" --csv "$tmp/plain.csv"

echo "-- traced run (2 threads): telemetry must not perturb the artifacts"
"$BIN" campaign --spec "$tmp/smoke.campaign" --threads 2 --quiet \
    --journal "$tmp/run.jsonl" \
    --trace "$tmp/run.trace.jsonl" --metrics "$tmp/run.metrics.jsonl" \
    --out "$tmp/traced.jsonl" --csv "$tmp/traced.csv"

cmp "$tmp/plain.jsonl" "$tmp/traced.jsonl"
cmp "$tmp/plain.csv" "$tmp/traced.csv"
echo "   artifacts byte-identical with telemetry on"

echo "-- traced run again (1 thread): the canonical trace must not change"
"$BIN" campaign --spec "$tmp/smoke.campaign" --threads 1 --quiet \
    --journal "$tmp/run1.jsonl" --trace "$tmp/run1.trace.jsonl" --out /dev/null

cmp "$tmp/run.trace.jsonl" "$tmp/run1.trace.jsonl"
echo "   trace byte-identical across 2 vs 1 threads"

echo "-- ftcg report: fold trace + metrics and reconcile against the journal"
"$BIN" report "$tmp/run.trace.jsonl" "$tmp/run.metrics.jsonl" "$tmp/run.jsonl" \
    --spec "$tmp/smoke.campaign" > "$tmp/report.txt"
grep -q "Protocol events" "$tmp/report.txt"
grep -q "Phase wall time" "$tmp/report.txt"
grep -q "poisson2d:12" "$tmp/report.txt"
echo "   report rendered and reconciled (exit 0 means 0 mismatches)"

# The report must count exactly the journal's job records: 16 jobs
# across 4 configurations of 4 reps each.
jobs_in_report="$(awk '/^Protocol events/{f=1;next} /^$/{f=0} f && !/^config/ {s+=$(NF-7)} END{print s}' "$tmp/report.txt")"
records_in_journal="$(($(wc -l < "$tmp/run.jsonl") - 1))"
if [ "$jobs_in_report" != "$records_in_journal" ]; then
    echo "error: report counts $jobs_in_report traced jobs but the journal has $records_in_journal records" >&2
    exit 1
fi
echo "   report job totals match the journal ($records_in_journal records)"

echo "-- observatory sections: quantiles + protocol analytics tables"
grep -q "Phase duration quantiles" "$tmp/report.txt"
grep -q "Detection latency" "$tmp/report.txt"
grep -q "Rollback waste" "$tmp/report.txt"
grep -q "Empirical fault pressure" "$tmp/report.txt"
echo "   all four analytics sections rendered"

echo "-- perfetto timeline export"
"$BIN" report "$tmp/run.trace.jsonl" "$tmp/run.metrics.jsonl" \
    --perfetto "$tmp/timeline.json" > /dev/null
grep -q '"traceEvents"' "$tmp/timeline.json"
grep -q 'process_name' "$tmp/timeline.json"
grep -q '"ph":"X"' "$tmp/timeline.json"
echo "   timeline written with metadata and duration spans"

echo "-- kill mid-run, resume: sidecar duplicates must dedupe last-wins"
"$BIN" campaign --spec "$tmp/smoke.campaign" --threads 1 --quiet --resume \
    --journal "$tmp/kr.jsonl" --trace "$tmp/kr.trace.jsonl" \
    --metrics "$tmp/kr.metrics.jsonl" --out /dev/null
# Simulate the kill: the journal keeps its manifest plus 4 records and
# a torn 5th; the trace keeps the jobs the journal knows about plus two
# more (a trace block is durable *before* its journal record); the
# sidecar keeps those same 6 job lines plus a torn 7th. The resumed run
# therefore re-executes jobs 4 and 5 and re-appends their sidecar
# lines — exactly the duplicate-line case the loader must last-wins.
head -n 5 "$tmp/kr.jsonl" > "$tmp/kr.jsonl.cut" \
    && printf '{"job":4,"el' >> "$tmp/kr.jsonl.cut" \
    && mv "$tmp/kr.jsonl.cut" "$tmp/kr.jsonl"
awk 'NR==1 || /"job":[0-5],/' "$tmp/kr.trace.jsonl" > "$tmp/kr.trace.jsonl.cut" \
    && mv "$tmp/kr.trace.jsonl.cut" "$tmp/kr.trace.jsonl"
head -n 7 "$tmp/kr.metrics.jsonl" > "$tmp/kr.metrics.jsonl.cut" \
    && printf '{"job":6,"ns":{"st' >> "$tmp/kr.metrics.jsonl.cut" \
    && mv "$tmp/kr.metrics.jsonl.cut" "$tmp/kr.metrics.jsonl"
"$BIN" campaign --spec "$tmp/smoke.campaign" --threads 2 --quiet --resume \
    --journal "$tmp/kr.jsonl" --trace "$tmp/kr.trace.jsonl" \
    --metrics "$tmp/kr.metrics.jsonl" --out "$tmp/kr.out.jsonl"

cmp "$tmp/plain.jsonl" "$tmp/kr.out.jsonl"
cmp "$tmp/run.trace.jsonl" "$tmp/kr.trace.jsonl"
echo "   resumed artifacts and trace byte-identical to the clean run"

for job in 4 5; do
    n="$(grep -c "\"job\":$job," "$tmp/kr.metrics.jsonl")"
    if [ "$n" -lt 2 ]; then
        echo "error: expected a duplicate sidecar line for re-run job $job (got $n)" >&2
        exit 1
    fi
done
grep -q '"summary"' "$tmp/kr.metrics.jsonl"
echo "   re-run jobs left duplicate sidecar lines and a summary line"

"$BIN" report "$tmp/kr.trace.jsonl" "$tmp/kr.metrics.jsonl" "$tmp/kr.jsonl" \
    --spec "$tmp/smoke.campaign" > "$tmp/kr.report.txt"
kr_jobs="$(awk '/^Protocol events/{f=1;next} /^$/{f=0} f && !/^config/ {s+=$(NF-7)} END{print s}' "$tmp/kr.report.txt")"
if [ "$kr_jobs" != "$records_in_journal" ]; then
    echo "error: resumed report counts $kr_jobs jobs, want $records_in_journal (duplicates not deduped?)" >&2
    exit 1
fi
echo "   resumed report dedupes to $kr_jobs jobs (last occurrence wins)"

# The trace-only report (protocol events + analytics, no wall-clock
# sections) must be byte-identical between the clean and resumed runs.
"$BIN" report "$tmp/run.trace.jsonl" --spec "$tmp/smoke.campaign" > "$tmp/clean.tr.txt"
"$BIN" report "$tmp/kr.trace.jsonl" --spec "$tmp/smoke.campaign" > "$tmp/kr.tr.txt"
cmp "$tmp/clean.tr.txt" "$tmp/kr.tr.txt"
echo "   trace-only analytics byte-identical across the resume boundary"

echo "trace/report smoke passed."

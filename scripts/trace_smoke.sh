#!/usr/bin/env bash
# Telemetry smoke: a traced campaign must (a) leave the JSONL/CSV
# artifacts byte-identical to an untraced run, (b) produce a canonical
# event trace that is byte-identical across thread counts, and
# (c) reconcile with its journal under `ftcg report`.
# Usage: scripts/trace_smoke.sh [path-to-ftcg-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release/ftcg}"
if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (run cargo build --release first)" >&2
    exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/smoke.campaign" <<'EOF'
name     = trace-smoke
seed     = 13
reps     = 4
matrices = poisson2d:12
schemes  = detection, correction
alphas   = 0, 1/16
EOF

echo "-- untraced reference (2 threads)"
"$BIN" campaign --spec "$tmp/smoke.campaign" --threads 2 --quiet \
    --out "$tmp/plain.jsonl" --csv "$tmp/plain.csv"

echo "-- traced run (2 threads): telemetry must not perturb the artifacts"
"$BIN" campaign --spec "$tmp/smoke.campaign" --threads 2 --quiet \
    --journal "$tmp/run.jsonl" \
    --trace "$tmp/run.trace.jsonl" --metrics "$tmp/run.metrics.jsonl" \
    --out "$tmp/traced.jsonl" --csv "$tmp/traced.csv"

cmp "$tmp/plain.jsonl" "$tmp/traced.jsonl"
cmp "$tmp/plain.csv" "$tmp/traced.csv"
echo "   artifacts byte-identical with telemetry on"

echo "-- traced run again (1 thread): the canonical trace must not change"
"$BIN" campaign --spec "$tmp/smoke.campaign" --threads 1 --quiet \
    --journal "$tmp/run1.jsonl" --trace "$tmp/run1.trace.jsonl" --out /dev/null

cmp "$tmp/run.trace.jsonl" "$tmp/run1.trace.jsonl"
echo "   trace byte-identical across 2 vs 1 threads"

echo "-- ftcg report: fold trace + metrics and reconcile against the journal"
"$BIN" report "$tmp/run.trace.jsonl" "$tmp/run.metrics.jsonl" "$tmp/run.jsonl" \
    --spec "$tmp/smoke.campaign" > "$tmp/report.txt"
grep -q "Protocol events" "$tmp/report.txt"
grep -q "Phase wall time" "$tmp/report.txt"
grep -q "poisson2d:12" "$tmp/report.txt"
echo "   report rendered and reconciled (exit 0 means 0 mismatches)"

# The report must count exactly the journal's job records: 16 jobs
# across 4 configurations of 4 reps each.
jobs_in_report="$(awk '/^Protocol events/{f=1;next} /^$/{f=0} f && !/^config/ {s+=$(NF-7)} END{print s}' "$tmp/report.txt")"
records_in_journal="$(($(wc -l < "$tmp/run.jsonl") - 1))"
if [ "$jobs_in_report" != "$records_in_journal" ]; then
    echo "error: report counts $jobs_in_report traced jobs but the journal has $records_in_journal records" >&2
    exit 1
fi
echo "   report job totals match the journal ($records_in_journal records)"

echo "trace/report smoke passed."

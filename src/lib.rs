//! Workspace umbrella package.
//!
//! Exists to own the repo-level `tests/` (end-to-end and paper-claim
//! suites) and `examples/`; the library surface is just a re-export of
//! the [`ftcg`] facade crate.

pub use ftcg;

//! Cross-crate end-to-end tests: generators → injection → resilient
//! solve → reporting, through the public `ftcg` facade.

use ftcg::prelude::*;
use ftcg::sim::{report, table1, PAPER_MATRICES};

#[test]
fn quickstart_flow_all_schemes() {
    let a = gen::poisson2d(20).unwrap();
    let n = a.n_rows();
    let xstar: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) * 0.25).collect();
    let b = a.spmv(&xstar);
    for scheme in Scheme::ALL {
        let out = ftcg::ResilientCg::new(&a)
            .scheme(scheme)
            .fault_alpha(1.0 / 32.0)
            .seed(11)
            .solve(&b);
        assert!(out.converged, "{}", scheme.name());
        let err = out
            .x
            .iter()
            .zip(xstar.iter())
            .map(|(u, v)| (u - v).abs())
            .fold(0.0_f64, f64::max);
        assert!(err < 1e-4, "{}: error {err}", scheme.name());
    }
}

#[test]
fn matrix_market_roundtrip_through_solver() {
    // Write a generated matrix to .mtx, read it back, solve.
    let a = gen::random_spd(120, 0.06, 3).unwrap();
    let dir = std::env::temp_dir().join("ftcg_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sys.mtx");
    io::write_matrix_market_file(&path, &a).unwrap();
    let a2 = io::read_matrix_market_file(&path).unwrap();
    assert_eq!(a.to_dense(), a2.to_dense());
    let b = vec![1.0; 120];
    let out = ftcg::ResilientCg::new(&a2).fault_alpha(0.05).solve(&b);
    assert!(out.converged);
    std::fs::remove_file(&path).ok();
}

#[test]
fn paper_matrix_miniatures_solve_under_faults() {
    // A miniature of every Table 1 matrix must converge under the
    // Table 1 fault rate with the correction scheme.
    for spec in PAPER_MATRICES.iter() {
        let a = spec.generate(64);
        let b = spec.rhs(a.n_rows());
        let out = ftcg::ResilientCg::new(&a)
            .scheme(Scheme::AbftCorrection)
            .fault_alpha(1.0 / 16.0)
            .seed(spec.id as u64)
            .solve(&b);
        assert!(out.converged, "matrix #{}", spec.id);
        assert!(
            out.true_residual / b.iter().map(|v| v * v).sum::<f64>().sqrt() < 1e-6,
            "matrix #{}: residual {}",
            spec.id,
            out.true_residual
        );
    }
}

#[test]
fn table1_quick_run_produces_full_report() {
    let params = table1::Table1Params {
        scale: 64,
        reps: 4,
        sweep: &[5, 15],
        threads: 4,
        ..table1::Table1Params::default()
    };
    let specs = &PAPER_MATRICES[..2];
    let rows = table1::run_table1(specs, &params);
    assert_eq!(rows.len(), 4); // 2 matrices × 2 schemes
    let md = report::table1_markdown(&rows);
    assert!(md.contains("ABFT-CORRECTION"));
    let csv = report::table1_csv(&rows);
    assert_eq!(csv.lines().count(), 5);
}

#[test]
fn plain_and_resilient_agree_fault_free() {
    let a = gen::random_spd(150, 0.05, 9).unwrap();
    let b: Vec<f64> = (0..150).map(|i| (i as f64 * 0.21).sin() + 2.0).collect();
    let plain = cg_solve(&a, &b, &vec![0.0; 150], &CgConfig::default());
    let resilient = ftcg::ResilientCg::new(&a).solve(&b);
    assert!(plain.converged && resilient.converged);
    // Same arithmetic, same iterates: solutions agree to rounding.
    let diff = plain
        .x
        .iter()
        .zip(resilient.x.iter())
        .map(|(u, v)| (u - v).abs())
        .fold(0.0_f64, f64::max);
    assert!(
        diff < 1e-10,
        "fault-free resilient CG must match plain CG, diff {diff}"
    );
    assert_eq!(plain.iterations, resilient.productive_iterations);
}

#[test]
fn other_solvers_work_through_facade() {
    let a = gen::random_spd(90, 0.07, 12).unwrap();
    let b = vec![1.0; 90];
    let x0 = vec![0.0; 90];
    let cfg = CgConfig::default();
    assert!(ftcg::solvers::pcg::pcg_jacobi_solve(&a, &b, &x0, &cfg).converged);
    assert!(ftcg::solvers::bicgstab::bicgstab_solve(&a, &b, &x0, &cfg).converged);
    let cfg_ne = CgConfig {
        max_iters: 50_000,
        ..cfg
    };
    assert!(ftcg::solvers::cgne::cgne_solve(&a, &b, &x0, &cfg_ne).converged);
}

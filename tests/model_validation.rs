//! Ablation A4: the abstract model (eq. 5) against the simulator.
//!
//! The model assumes **every** error in a chunk is caught by the
//! verification and forces a rollback. Two implementation realities make
//! the paper-default injector *gentler* than the model: TMR absorbs
//! `r`/`x` faults without rollback, and flips below the floating-point
//! tolerance go (harmlessly) undetected. The *calibrated* injector
//! (matrix-only targets, high-bit flips) removes both effects, so the
//! simulated mean must track eq. (5) closely; with the paper-default
//! injector the model is an upper bound.

use ftcg::checkpoint::ResilienceCosts;
use ftcg::model::{expected_frame_time, optimize, Scheme};
use ftcg::prelude::*;
use ftcg::sim::runner::{calibrated_injector, paper_injector, run_many, run_many_with};
use ftcg::solvers::resilient::{solve_resilient, ResilientConfig};

fn system(n: usize, seed: u64) -> (CsrMatrix, Vec<f64>) {
    let a = gen::random_spd(n, 0.04, seed).unwrap();
    let b: Vec<f64> = (0..n).map(|i| 1.5 + (i as f64 * 0.19).sin()).collect();
    (a, b)
}

/// Predicted total time for `iters` productive iterations at interval `s`.
fn model_total_time(
    scheme: Scheme,
    iters: usize,
    s: usize,
    alpha: f64,
    costs: &ResilienceCosts,
) -> f64 {
    let q = scheme.chunk_success(alpha, 1.0);
    let frames = iters as f64 / s as f64;
    frames * expected_frame_time(s, 1.0, costs, q)
}

#[test]
fn simulated_time_tracks_model_with_calibrated_faults() {
    let (a, b) = system(200, 1);
    let costs = ResilienceCosts::new(2.0, 2.0, 0.1);
    let alpha = 1.0 / 16.0;
    for s in [4usize, 10, 25] {
        let mut cfg = ResilientConfig::new(Scheme::AbftDetection, s);
        cfg.costs = costs;
        let sum = run_many_with(
            &a,
            &b,
            &cfg,
            |seed| calibrated_injector(&a, alpha, seed),
            40,
            500,
            4,
        );
        let clean = solve_resilient(&a, &b, &cfg, None);
        let predicted = model_total_time(
            Scheme::AbftDetection,
            clean.productive_iterations,
            s,
            alpha,
            &costs,
        );
        let ratio = sum.mean_time / predicted;
        assert!(
            (0.8..1.25).contains(&ratio),
            "s={s}: simulated {} vs model {predicted} (ratio {ratio})",
            sum.mean_time
        );
    }
}

#[test]
fn model_upper_bounds_paper_default_injection() {
    // With TMR absorbing vector faults and sub-threshold flips invisible,
    // the model's pessimistic q makes it an upper bound (with slack for
    // 40-rep noise).
    let (a, b) = system(200, 2);
    let costs = ResilienceCosts::new(2.0, 2.0, 0.1);
    let alpha = 1.0 / 8.0;
    for s in [5usize, 14] {
        let mut cfg = ResilientConfig::new(Scheme::AbftDetection, s);
        cfg.costs = costs;
        let sum = run_many(&a, &b, &cfg, alpha, 40, 900, 4);
        let clean = solve_resilient(&a, &b, &cfg, None);
        let predicted = model_total_time(
            Scheme::AbftDetection,
            clean.productive_iterations,
            s,
            alpha,
            &costs,
        );
        assert!(
            sum.mean_time <= predicted * 1.10,
            "s={s}: simulated {} should not exceed model {predicted}",
            sum.mean_time
        );
    }
}

#[test]
fn correction_scheme_tracks_its_success_probability() {
    // ABFT-CORRECTION under calibrated single faults: an iteration only
    // rolls back when >= 2 faults strike, i.e. q = e^{-a}(1+a).
    let (a, b) = system(200, 3);
    let costs = ResilienceCosts::new(2.0, 2.0, 0.2);
    let alpha = 0.25; // high rate so double faults actually occur
    let s = 10;
    let mut cfg = ResilientConfig::new(Scheme::AbftCorrection, s);
    cfg.costs = costs;
    let sum = run_many_with(
        &a,
        &b,
        &cfg,
        |seed| calibrated_injector(&a, alpha, seed),
        40,
        1300,
        4,
    );
    let clean = solve_resilient(&a, &b, &cfg, None);
    let predicted = model_total_time(
        Scheme::AbftCorrection,
        clean.productive_iterations,
        s,
        alpha,
        &costs,
    );
    let ratio = sum.mean_time / predicted;
    assert!(
        (0.75..1.3).contains(&ratio),
        "simulated {} vs model {predicted} (ratio {ratio})",
        sum.mean_time
    );
    // And it must roll back far less than the detection scheme would.
    let mut det_cfg = ResilientConfig::new(Scheme::AbftDetection, s);
    det_cfg.costs = costs;
    let det = run_many_with(
        &a,
        &b,
        &det_cfg,
        |seed| calibrated_injector(&a, alpha, seed),
        40,
        1300,
        4,
    );
    assert!(sum.mean_rollbacks < det.mean_rollbacks / 2.0);
}

#[test]
fn model_optimal_interval_is_near_empirical_optimum() {
    // The Table 1 claim in miniature, under calibrated injection: running
    // at s̃ costs at most ~12% more than the best swept interval.
    let (a, b) = system(180, 4);
    let costs = ResilienceCosts::new(2.0, 2.0, 0.1);
    let alpha = 1.0 / 16.0;
    let s_model =
        optimize::optimal_abft_interval(Scheme::AbftDetection, alpha, 1.0, &costs, 2000).s;

    let eval = |s: usize| {
        let mut cfg = ResilientConfig::new(Scheme::AbftDetection, s);
        cfg.costs = costs;
        run_many_with(
            &a,
            &b,
            &cfg,
            |seed| calibrated_injector(&a, alpha, seed),
            48,
            7000,
            4,
        )
        .mean_time
    };
    let t_model = eval(s_model);
    let mut best = f64::INFINITY;
    for s in [2usize, 4, 6, 8, 10, 14, 18, 24, 32] {
        best = best.min(eval(s));
    }
    let loss = (t_model - best) / best * 100.0;
    assert!(
        loss < 12.0,
        "loss of trusting the model: {loss:.1}% (s_model={s_model})"
    );
}

#[test]
fn correction_beats_detection_at_table1_rate() {
    // The central comparative claim at α = 1/16 with model-optimal
    // intervals for each scheme, under the paper-default injector.
    let (a, b) = system(220, 5);
    let alpha = 1.0 / 16.0;
    let det_costs = ResilienceCosts::new(2.0, 2.0, 0.1);
    let cor_costs = ResilienceCosts::new(2.0, 2.0, 0.2);
    let s_det =
        optimize::optimal_abft_interval(Scheme::AbftDetection, alpha, 1.0, &det_costs, 2000).s;
    let s_cor =
        optimize::optimal_abft_interval(Scheme::AbftCorrection, alpha, 1.0, &cor_costs, 2000).s;

    let mut cfg_det = ResilientConfig::new(Scheme::AbftDetection, s_det);
    cfg_det.costs = det_costs;
    let mut cfg_cor = ResilientConfig::new(Scheme::AbftCorrection, s_cor);
    cfg_cor.costs = cor_costs;

    let t_det = run_many(&a, &b, &cfg_det, alpha, 40, 100, 4).mean_time;
    let t_cor = run_many(&a, &b, &cfg_cor, alpha, 40, 100, 4).mean_time;
    assert!(
        t_cor < t_det,
        "ABFT-CORRECTION {t_cor} should beat ABFT-DETECTION {t_det} at alpha=1/16"
    );
}

#[test]
fn injector_calibration_matches_alpha() {
    // The normalized-MTBF x-axis of Figure 1 is only meaningful if the
    // injector really produces alpha faults per iteration on average.
    let (a, _) = system(150, 6);
    for alpha in [0.5, 1.0 / 16.0, 1.0 / 128.0] {
        let mut inj = paper_injector(&a, alpha, 3);
        let iters = 60_000;
        let total: usize = (0..iters).map(|_| inj.plan_iteration().len()).sum();
        let emp = total as f64 / iters as f64;
        assert!(
            (emp - alpha).abs() < 0.12 * alpha + 2e-4,
            "alpha {alpha}: empirical {emp}"
        );
    }
}

//! The paper's qualitative claims C1–C5 (DESIGN.md §2), verified
//! programmatically across the crates.

use ftcg::abft::{ProtectedSpmv, SingleChecksum, SpmvOutcome, XRef};
use ftcg::prelude::*;
use ftcg::sim::runner::paper_injector;
use ftcg::solvers::resilient::{solve_resilient, ResilientConfig};

fn system(n: usize, seed: u64) -> (CsrMatrix, Vec<f64>) {
    let a = gen::random_spd(n, 0.05, seed).unwrap();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.23).cos()).collect();
    (a, b)
}

/// C1 — the last checkpoint is always valid: any number of rollbacks
/// later, the run still converges to the right solution, because
/// checkpoints are only taken behind passing verifications.
#[test]
fn c1_checkpoints_always_valid() {
    let (a, b) = system(150, 1);
    // High fault rate to force many rollbacks.
    let mut cfg = ResilientConfig::new(Scheme::AbftDetection, 6);
    cfg.max_executed_iters = 100_000;
    let mut failures = 0;
    let mut total_rollbacks = 0usize;
    for seed in 0..10 {
        let mut inj = paper_injector(&a, 0.3, seed);
        let out = solve_resilient(&a, &b, &cfg, Some(&mut inj));
        if !out.converged {
            failures += 1;
            continue;
        }
        // A seed can get lucky (few faults, none detected); the claim is
        // about runs that DID roll back, so require rollbacks only where
        // detections happened and assert plenty of coverage in aggregate.
        assert_eq!(
            out.rollbacks, out.detections,
            "seed {seed}: every detection must trigger a rollback"
        );
        total_rollbacks += out.rollbacks;
        let rel = out.true_residual / b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            rel < 1e-6,
            "seed {seed}: corrupted state survived rollback: {rel}"
        );
    }
    assert!(failures <= 2, "{failures}/10 runs failed to converge");
    assert!(
        total_rollbacks >= 10,
        "alpha=0.3 should exercise many rollbacks, saw {total_rollbacks}"
    );
}

/// C2 — forward recovery lets ABFT-CORRECTION checkpoint less often
/// (larger model-optimal s) and roll back (almost) never at moderate
/// rates.
#[test]
fn c2_correction_needs_fewer_checkpoints_and_rollbacks() {
    use ftcg::checkpoint::ResilienceCosts;
    use ftcg::model::optimize;
    let costs = ResilienceCosts::new(2.0, 2.0, 0.15);
    let alpha = 1.0 / 16.0;
    let s_det = optimize::optimal_abft_interval(Scheme::AbftDetection, alpha, 1.0, &costs, 2000).s;
    let s_cor = optimize::optimal_abft_interval(Scheme::AbftCorrection, alpha, 1.0, &costs, 2000).s;
    assert!(
        s_cor > s_det,
        "model: correction s {s_cor} !> detection s {s_det}"
    );

    let (a, b) = system(200, 2);
    let mut det_rb = 0usize;
    let mut cor_rb = 0usize;
    for seed in 0..6 {
        let mut inj = paper_injector(&a, alpha, seed);
        det_rb += solve_resilient(
            &a,
            &b,
            &ResilientConfig::new(Scheme::AbftDetection, s_det),
            Some(&mut inj),
        )
        .rollbacks;
        let mut inj = paper_injector(&a, alpha, seed);
        cor_rb += solve_resilient(
            &a,
            &b,
            &ResilientConfig::new(Scheme::AbftCorrection, s_cor),
            Some(&mut inj),
        )
        .rollbacks;
    }
    assert!(
        cor_rb * 3 <= det_rb.max(1),
        "correction rollbacks {cor_rb} should be far below detection's {det_rb}"
    );
}

/// C3 — the Theorem 2 tolerance yields zero false positives: thousands
/// of fault-free products never trip any test of either scheme.
#[test]
fn c3_no_false_positives() {
    for seed in 0..5u64 {
        let a = gen::random_spd(120, 0.06, seed).unwrap();
        let dual = ProtectedSpmv::new(&a);
        let single = SingleChecksum::new(&a);
        for trial in 0..200u64 {
            let scale = 10f64.powi((trial % 7) as i32 - 3);
            let x: Vec<f64> = (0..120)
                .map(|i| ((i as f64 + trial as f64) * 0.61).sin() * scale)
                .collect();
            let xref = XRef::capture(&x);
            let mut y = vec![0.0; 120];
            assert_eq!(
                dual.spmv_detect(&a, &x, &xref, &mut y),
                SpmvOutcome::Clean,
                "dual false positive: seed {seed} trial {trial}"
            );
            assert!(
                single.spmv_detect(&a, &x, &xref, &mut y).is_trusted(),
                "single false positive: seed {seed} trial {trial}"
            );
        }
    }
}

/// C4 — undetected (below-threshold) bit flips do not prevent
/// convergence to the correct solution.
#[test]
fn c4_sub_threshold_flips_harmless() {
    let (a, b) = system(150, 3);
    // Low mantissa bits only: perturbations far below the tolerance.
    let mut survived = 0;
    for seed in 0..5u64 {
        let mut am = a.clone();
        // Flip 20 low mantissa bits around the matrix.
        for k in 0..20usize {
            let pos = (seed as usize * 37 + k * 101) % am.nnz();
            let bit = (k % 8) as u32; // bits 0..8 of the mantissa
            let v = &mut am.val_mut()[pos];
            *v = f64::from_bits(v.to_bits() ^ (1u64 << bit));
        }
        let out = ftcg::ResilientCg::new(&am).solve(&b);
        if out.converged && out.true_residual < 1e-5 {
            survived += 1;
        }
    }
    assert_eq!(survived, 5, "sub-threshold perturbations must not break CG");
}

/// C5 — single-error correction restores bit-exact state for structure
/// and input-vector faults, and exact recomputation for outputs.
#[test]
fn c5_correction_exactness() {
    let a = gen::random_spd(100, 0.06, 4).unwrap();
    let p = ProtectedSpmv::new(&a);
    let x0: Vec<f64> = (0..100).map(|i| (i as f64 * 0.41).sin() + 1.1).collect();
    let xref = XRef::capture(&x0);
    let clean_y = a.spmv(&x0);

    // Rowidx: bit-exact.
    let mut am = a.clone();
    am.rowptr_mut()[33] ^= 0b100;
    let mut xm = x0.clone();
    let mut y = vec![0.0; 100];
    assert!(matches!(
        p.spmv_correct(&mut am, &mut xm, &xref, &mut y),
        SpmvOutcome::Corrected(_)
    ));
    assert_eq!(am.rowptr(), a.rowptr());
    assert_eq!(y, clean_y);

    // Colid: bit-exact.
    let mut am = a.clone();
    let old = am.colid()[50];
    am.colid_mut()[50] = (old + 17) % 100;
    let mut y = vec![0.0; 100];
    let out = p.spmv_correct(&mut am, &mut xm, &xref, &mut y);
    assert!(matches!(out, SpmvOutcome::Corrected(_)), "{out:?}");
    assert_eq!(am.colid()[50], old);
    assert_eq!(y, clean_y);

    // Input: bit-exact restore from the reliable copy.
    let mut am = a.clone();
    let mut xm = x0.clone();
    xm[70] = f64::from_bits(xm[70].to_bits() ^ (1 << 62));
    let mut y = vec![0.0; 100];
    assert!(matches!(
        p.spmv_correct(&mut am, &mut xm, &xref, &mut y),
        SpmvOutcome::Corrected(_)
    ));
    assert_eq!(xm[70].to_bits(), x0[70].to_bits());
    assert_eq!(y, clean_y);

    // Val: exact to checksum rounding (the paper's construction cannot
    // do better — documented in DESIGN.md §7).
    let mut am = a.clone();
    let true_val = am.val()[20];
    am.val_mut()[20] += 3.25;
    let mut y = vec![0.0; 100];
    assert!(matches!(
        p.spmv_correct(&mut am, &mut xm, &xref, &mut y),
        SpmvOutcome::Corrected(_)
    ));
    assert!((am.val()[20] - true_val).abs() < 1e-10 * (1.0 + true_val.abs()));
}

/// The headline comparison: at moderate-to-high fault rates the
/// correction scheme's simulated time beats both others; at very low
/// rates ONLINE-DETECTION's cheap iterations make the three comparable.
#[test]
fn headline_scheme_ordering() {
    let (a, b) = system(220, 5);
    let mean_time = |scheme: Scheme, alpha: f64| {
        let mut total = 0.0;
        let reps = 12;
        for seed in 0..reps {
            let cfg = ftcg::ResilientCg::new(&a)
                .scheme(scheme)
                .fault_alpha(alpha)
                .config();
            let mut inj = paper_injector(&a, alpha, 40 + seed);
            total += solve_resilient(&a, &b, &cfg, Some(&mut inj)).simulated_time;
        }
        total / reps as f64
    };
    let alpha = 1.0 / 16.0; // moderate rate: the paper's sweet spot
    let t_online = mean_time(Scheme::OnlineDetection, alpha);
    let t_det = mean_time(Scheme::AbftDetection, alpha);
    let t_cor = mean_time(Scheme::AbftCorrection, alpha);
    assert!(
        t_cor < t_online && t_cor < t_det,
        "ABFT-CORRECTION ({t_cor:.1}) must win at alpha=1/16: online {t_online:.1}, detection {t_det:.1}"
    );
}

/// Regression: a sub-tolerance matrix corruption that slips into a
/// checkpoint and only becomes detectable later must not livelock the
/// rollback loop — the driver escalates to re-reading the initial data
/// (the paper's first-frame recovery) and still converges.
#[test]
fn tainted_checkpoint_escalates_instead_of_livelocking() {
    let spec = ftcg::sim::matrices::by_id(2213).unwrap();
    let a = spec.generate(64);
    let b = spec.rhs(a.n_rows());
    // Seeds found adversarial before the escalation guard existed.
    let mut worst_exec = 0usize;
    for seed in 0..30u64 {
        let cfg = ftcg::ResilientCg::new(&a)
            .scheme(Scheme::AbftDetection)
            .fault_alpha(0.01)
            .config();
        let mut inj = paper_injector(&a, 0.01, 1_000_000 + seed);
        let out = solve_resilient(&a, &b, &cfg, Some(&mut inj));
        assert!(
            out.converged,
            "seed {seed}: rollbacks={} exec={}",
            out.rollbacks, out.executed_iterations
        );
        worst_exec = worst_exec.max(out.executed_iterations);
        assert!(
            out.executed_iterations < 20 * out.productive_iterations.max(50),
            "seed {seed}: livelock signature ({} executed for {} productive)",
            out.executed_iterations,
            out.productive_iterations
        );
    }
    assert!(worst_exec > 0);
}

//! Bit-identity regression suite for the steppable-solver refactor.
//!
//! Each solver's historical monolithic loop is kept here verbatim (the
//! pre-refactor implementations) and compared against today's
//! machine-driven `*_solve` entry points on the paper's Table 1 test
//! set: `SolveStats` must match **bit for bit** — iterations,
//! convergence flag, residual-norm bits and every component of `x`.

use ftcg::prelude::*;
use ftcg::sim::PAPER_MATRICES;
use ftcg::solvers::{bicgstab_solve, cgne_solve, pcg_jacobi_solve, CgConfig, SolveStats};
use ftcg::sparse::vector;

// ---------------------------------------------------------------------
// The pre-refactor loops, copied verbatim (asserts elided).
// ---------------------------------------------------------------------

fn legacy_cg(a: &CsrMatrix, b: &[f64], x0: &[f64], cfg: &CgConfig) -> SolveStats {
    let n = a.n_rows();
    let mut x = x0.to_vec();
    let mut r = b.to_vec();
    let ax = a.spmv(&x);
    vector::sub_assign(&mut r, &ax);
    let mut p = r.clone();
    let mut q = vec![0.0; n];
    let mut rnorm_sq = vector::norm2_sq(&r);
    let threshold = cfg.stopping.threshold(a, vector::norm2(b), rnorm_sq.sqrt());
    let mut it = 0usize;
    while rnorm_sq.sqrt() > threshold && it < cfg.max_iters {
        a.spmv_into(&p, &mut q);
        let pq = vector::dot(&p, &q);
        if pq <= 0.0 || !pq.is_finite() {
            break;
        }
        let alpha = rnorm_sq / pq;
        vector::axpy(alpha, &p, &mut x);
        vector::axpy(-alpha, &q, &mut r);
        let new_rnorm_sq = vector::norm2_sq(&r);
        let beta = new_rnorm_sq / rnorm_sq;
        rnorm_sq = new_rnorm_sq;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        it += 1;
    }
    SolveStats {
        converged: rnorm_sq.sqrt() <= threshold,
        residual_norm: rnorm_sq.sqrt(),
        iterations: it,
        x,
    }
}

fn legacy_pcg(a: &CsrMatrix, b: &[f64], x0: &[f64], cfg: &CgConfig) -> SolveStats {
    let n = a.n_rows();
    let diag = a.diag();
    let minv: Vec<f64> = diag.iter().map(|&d| 1.0 / d).collect();
    let mut x = x0.to_vec();
    let mut r = b.to_vec();
    let ax = a.spmv(&x);
    vector::sub_assign(&mut r, &ax);
    let mut z: Vec<f64> = r.iter().zip(minv.iter()).map(|(rv, m)| rv * m).collect();
    let mut p = z.clone();
    let mut q = vec![0.0; n];
    let mut rz = vector::dot(&r, &z);
    let threshold = cfg
        .stopping
        .threshold(a, vector::norm2(b), vector::norm2(&r));
    let mut it = 0usize;
    let mut rnorm = vector::norm2(&r);
    while rnorm > threshold && it < cfg.max_iters {
        a.spmv_into(&p, &mut q);
        let pq = vector::dot(&p, &q);
        if pq <= 0.0 || !pq.is_finite() {
            break;
        }
        let alpha = rz / pq;
        vector::axpy(alpha, &p, &mut x);
        vector::axpy(-alpha, &q, &mut r);
        for i in 0..n {
            z[i] = r[i] * minv[i];
        }
        let rz_new = vector::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        rnorm = vector::norm2(&r);
        it += 1;
    }
    SolveStats {
        converged: rnorm <= threshold,
        residual_norm: rnorm,
        iterations: it,
        x,
    }
}

fn legacy_bicgstab(a: &CsrMatrix, b: &[f64], x0: &[f64], cfg: &CgConfig) -> SolveStats {
    let n = a.n_rows();
    let mut x = x0.to_vec();
    let mut r = b.to_vec();
    let ax = a.spmv(&x);
    vector::sub_assign(&mut r, &ax);
    let rhat = r.clone();
    let mut p = r.clone();
    let mut v = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut t = vec![0.0; n];
    let mut rho = vector::dot(&rhat, &r);
    let threshold = cfg
        .stopping
        .threshold(a, vector::norm2(b), vector::norm2(&r));
    let mut it = 0usize;
    let mut rnorm = vector::norm2(&r);
    while rnorm > threshold && it < cfg.max_iters {
        if rho == 0.0 || !rho.is_finite() {
            break;
        }
        a.spmv_into(&p, &mut v);
        let rhat_v = vector::dot(&rhat, &v);
        if rhat_v == 0.0 || !rhat_v.is_finite() {
            break;
        }
        let alpha = rho / rhat_v;
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        if vector::norm2(&s) <= threshold {
            vector::axpy(alpha, &p, &mut x);
            r.copy_from_slice(&s);
            rnorm = vector::norm2(&r);
            it += 1;
            break;
        }
        a.spmv_into(&s, &mut t);
        let tt = vector::norm2_sq(&t);
        if tt == 0.0 {
            break;
        }
        let omega = vector::dot(&t, &s) / tt;
        if omega == 0.0 || !omega.is_finite() {
            break;
        }
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
        }
        for i in 0..n {
            r[i] = s[i] - omega * t[i];
        }
        let rho_new = vector::dot(&rhat, &r);
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        rnorm = vector::norm2(&r);
        it += 1;
    }
    SolveStats {
        converged: rnorm <= threshold,
        residual_norm: rnorm,
        iterations: it,
        x,
    }
}

fn legacy_cgne(a: &CsrMatrix, b: &[f64], x0: &[f64], cfg: &CgConfig) -> SolveStats {
    let n = a.n_rows();
    let mut x = x0.to_vec();
    let mut r = b.to_vec();
    let ax = a.spmv(&x);
    vector::sub_assign(&mut r, &ax);
    let mut p = vec![0.0; n];
    a.spmv_transpose_into(&r, &mut p);
    let mut q = vec![0.0; n];
    let mut rtr = vector::norm2_sq(&p);
    let threshold = cfg
        .stopping
        .threshold(a, vector::norm2(b), vector::norm2(&r));
    let mut it = 0usize;
    let mut rnorm = vector::norm2(&r);
    while rnorm > threshold && it < cfg.max_iters {
        if rtr == 0.0 || !rtr.is_finite() {
            break;
        }
        a.spmv_into(&p, &mut q);
        let qq = vector::norm2_sq(&q);
        if qq == 0.0 || !qq.is_finite() {
            break;
        }
        let alpha = rtr / qq;
        vector::axpy(alpha, &p, &mut x);
        vector::axpy(-alpha, &q, &mut r);
        let mut z = vec![0.0; n];
        a.spmv_transpose_into(&r, &mut z);
        let rtr_new = vector::norm2_sq(&z);
        let beta = rtr_new / rtr;
        rtr = rtr_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        rnorm = vector::norm2(&r);
        it += 1;
    }
    SolveStats {
        converged: rnorm <= threshold,
        residual_norm: rnorm,
        iterations: it,
        x,
    }
}

// ---------------------------------------------------------------------
// The comparison harness.
// ---------------------------------------------------------------------

fn assert_bit_identical(name: &str, id: u32, legacy: &SolveStats, current: &SolveStats) {
    assert_eq!(legacy.iterations, current.iterations, "{name} paper:{id}");
    assert_eq!(legacy.converged, current.converged, "{name} paper:{id}");
    assert_eq!(
        legacy.residual_norm.to_bits(),
        current.residual_norm.to_bits(),
        "{name} paper:{id}"
    );
    assert_eq!(legacy.x.len(), current.x.len(), "{name} paper:{id}");
    for (i, (l, c)) in legacy.x.iter().zip(&current.x).enumerate() {
        assert_eq!(
            l.to_bits(),
            c.to_bits(),
            "{name} paper:{id}: x[{i}] differs"
        );
    }
}

/// Table 1 suite at reduced scale, plus warm starts and a tight cap —
/// exercising the convergence, max-iters and warm-start paths of every
/// wrapper against its pre-refactor loop.
#[test]
fn machine_wrappers_match_legacy_loops_on_table1_suite() {
    for spec in &PAPER_MATRICES {
        let a = spec.generate(48);
        let n = a.n_rows();
        let b = spec.rhs(n);
        let zero = vec![0.0; n];
        let warm: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
        let capped = CgConfig {
            max_iters: 7,
            ..CgConfig::default()
        };
        for (x0, cfg) in [
            (&zero, &CgConfig::default()),
            (&warm, &CgConfig::default()),
            (&zero, &capped),
        ] {
            assert_bit_identical(
                "cg",
                spec.id,
                &legacy_cg(&a, &b, x0, cfg),
                &cg_solve(&a, &b, x0, cfg),
            );
            assert_bit_identical(
                "pcg",
                spec.id,
                &legacy_pcg(&a, &b, x0, cfg),
                &pcg_jacobi_solve(&a, &b, x0, cfg),
            );
            assert_bit_identical(
                "bicgstab",
                spec.id,
                &legacy_bicgstab(&a, &b, x0, cfg),
                &bicgstab_solve(&a, &b, x0, cfg),
            );
        }
        // CGNE squares the condition number — full convergence on the
        // ill-conditioned suite members takes tens of thousands of
        // iterations. A capped run still pins every per-iteration FP
        // operation; full convergence is pinned on the well-conditioned
        // members below.
        let cgne_capped = CgConfig {
            max_iters: 200,
            ..CgConfig::default()
        };
        assert_bit_identical(
            "cgne",
            spec.id,
            &legacy_cgne(&a, &b, &zero, &cgne_capped),
            &cgne_solve(&a, &b, &zero, &cgne_capped),
        );
    }
}

/// CGNE runs to full convergence on the best-conditioned suite member
/// (the capped runs above pin the others).
#[test]
fn cgne_full_convergence_matches_legacy() {
    let cfg = CgConfig {
        max_iters: 100_000,
        ..CgConfig::default()
    };
    let spec = &PAPER_MATRICES[0];
    let a = spec.generate(48);
    let b = spec.rhs(a.n_rows());
    let zero = vec![0.0; a.n_rows()];
    let legacy = legacy_cgne(&a, &b, &zero, &cfg);
    let current = cgne_solve(&a, &b, &zero, &cfg);
    assert!(current.converged, "paper:{} did not converge", spec.id);
    assert_bit_identical("cgne", spec.id, &legacy, &current);
}

/// `cgne_solve_with` + the serial CSR kernel is the one-line delegation
/// target of `cgne_solve` — pin the pair to the legacy loop too.
#[test]
fn cgne_with_explicit_kernel_matches_legacy() {
    use ftcg::kernels::KernelSpec;
    let spec = &PAPER_MATRICES[0];
    let a = spec.generate(48);
    let b = spec.rhs(a.n_rows());
    let zero = vec![0.0; a.n_rows()];
    let cfg = CgConfig {
        max_iters: 100_000,
        ..CgConfig::default()
    };
    let prepared = KernelSpec::Csr.prepare(&a).unwrap();
    assert_bit_identical(
        "cgne_with",
        spec.id,
        &legacy_cgne(&a, &b, &zero, &cfg),
        &ftcg::solvers::cgne_solve_with(&a, &b, &zero, &cfg, prepared.as_ref()),
    );
}

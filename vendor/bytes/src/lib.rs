//! Offline stand-in for the `bytes` crate: cursor-backed [`Bytes`] and
//! growable [`BytesMut`] with the little-endian [`Buf`]/[`BufMut`]
//! accessors the checkpoint codec uses. No refcounted zero-copy slicing
//! — checkpoint buffers here are owned, linear, and read once.

#![warn(missing_docs)]

/// Read-side accessors over a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies out the next `n` bytes, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side accessors.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f64` (bit-exact).
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Copies the unread bytes into a `Vec`.
    #[allow(clippy::wrong_self_convention)]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A new buffer holding a copy of the given sub-range of the
    /// unread bytes.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.as_slice()[range])
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` iff fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "copy_to_bytes past end");
        let out = Bytes::copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        out
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 past end");
        let v = self.data[self.pos];
        self.pos += 1;
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "get_u64_le past end");
        let mut le = [0u8; 8];
        le.copy_from_slice(&self.data[self.pos..self.pos + 8]);
        self.pos += 8;
        u64::from_le_bytes(le)
    }
}

/// A growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff nothing written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts to an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u64_le(0xDEAD_BEEF_0123_4567);
        w.put_f64_le(-0.0);
        w.put_slice(b"xy");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 8 + 8 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF_0123_4567);
        assert_eq!(r.get_f64_le().to_bits(), (-0.0f64).to_bits());
        assert_eq!(&r.copy_to_bytes(2)[..], b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn deref_views_unread_tail() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let _ = b.get_u8();
        assert_eq!(&b[..], &[2, 3, 4]);
        assert_eq!(b.to_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn nan_bits_survive() {
        let mut w = BytesMut::new();
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        w.put_f64_le(weird);
        assert_eq!(w.freeze().get_f64_le().to_bits(), weird.to_bits());
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overread_panics() {
        Bytes::new().get_u8();
    }
}

//! Offline stand-in for `criterion`.
//!
//! Implements the configuration/group/`bench_function` surface the
//! workspace's benches use, measuring wall-clock time with `Instant` and
//! printing a `name: mean ± stddev per iter (N samples)` line per
//! benchmark. No HTML reports, no statistical regression testing — the
//! numbers are for reading trends, the harness is for keeping the bench
//! targets compiling and runnable offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export for benches written against `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up running time before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, &id.into(), f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(self.criterion, &full, f);
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses at least once.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        // Choose iterations per sample so all samples fit the budget.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(t0.elapsed() / iters_per_sample.max(1) as u32);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, name: &str, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: c.sample_size,
        measurement_time: c.measurement_time,
        warm_up_time: c.warm_up_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name}: no samples collected");
        return;
    }
    let nanos: Vec<f64> = b.samples.iter().map(|d| d.as_nanos() as f64).collect();
    let mean = nanos.iter().sum::<f64>() / nanos.len() as f64;
    let var =
        nanos.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (nanos.len() as f64 - 1.0).max(1.0);
    println!(
        "{name}: {} ± {} per iter ({} samples)",
        fmt_ns(mean),
        fmt_ns(var.sqrt()),
        nanos.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group function, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.benchmark_group("g").bench_function("f", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with(" s"));
    }
}

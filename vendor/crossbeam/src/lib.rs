//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces the workspace uses, implemented on
//! `std::thread::scope`:
//!
//! * [`scope`] — crossbeam-style scoped threads (the closure passed to
//!   `spawn` receives a `&Scope` so workers may themselves spawn);
//! * [`deque`] — an injector-style shared work queue with the
//!   `Injector`/`Steal` API used by the campaign engine's worker pool.

#![warn(missing_docs)]

use std::any::Any;

/// A scope handle: threads spawned through it are joined before
/// [`scope`] returns.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives this scope, so
    /// nested spawning works like in crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(&handle))
    }
}

/// Runs `f` with a scope in which borrowing local data across threads is
/// safe; all spawned threads are joined on exit.
///
/// Returns `Ok(result)` — a panicking child propagates its panic when
/// joined (matching the `.expect(..)` call sites written against
/// crossbeam's `Result` API).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Work-queue primitives.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// Transient contention; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// Extracts the task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// `true` iff the queue reported empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A FIFO injector queue shared between workers.
    ///
    /// crossbeam's lock-free injector is replaced by a mutexed
    /// `VecDeque`; the campaign jobs each run a full resilient solve, so
    /// queue contention is nowhere near the critical path.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task to the back of the queue.
        pub fn push(&self, task: T) {
            self.q.lock().unwrap().push_back(task);
        }

        /// Steals a task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(t) => Steal::Success(t),
                    None => Steal::Empty,
                },
                Err(_) => Steal::Retry,
            }
        }

        /// `true` iff no tasks are queued right now.
        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.q.lock().unwrap().len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_and_returns() {
        let mut data = vec![0u64; 8];
        let r = super::scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 + 1);
            }
            7
        })
        .unwrap();
        assert_eq!(r, 7);
        assert_eq!(data, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                counter.fetch_add(1, Ordering::SeqCst);
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn injector_fifo_order() {
        let q = Injector::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.steal(), Steal::Success(1));
        assert_eq!(q.steal(), Steal::Success(2));
        assert_eq!(q.steal(), Steal::Success(3));
        assert!(q.steal().is_empty());
    }

    #[test]
    fn injector_concurrent_drain() {
        let q = Injector::new();
        let n = 1000usize;
        for i in 0..n {
            q.push(i);
        }
        let sum = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| loop {
                    match q.steal() {
                        Steal::Success(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::SeqCst), n * (n - 1) / 2);
        assert!(q.is_empty());
    }
}

//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex` /
//! `RwLock` API implemented over `std::sync`. Poisoning is translated to
//! a panic at lock time, which matches parking_lot's behavior closely
//! enough for this workspace (a poisoned lock means a worker already
//! panicked and the run is lost anyway).

#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex poisoned")
    }
}

/// A reader–writer lock whose guards are returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned")
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_try_lock() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}

//! Collection strategies.

use std::ops::{Range, RangeInclusive};

use rand::RngExt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length range for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            rng.random_range(self.size.lo..self.size.hi + 1)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_bounds_hold() {
        let mut rng = TestRng::for_test("collection-tests");
        let s = vec(0usize..10, 2..=5);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn exact_length_from_usize_and_singleton_range() {
        let mut rng = TestRng::for_test("collection-exact");
        assert_eq!(vec(0u64..3, 4usize).generate(&mut rng).len(), 4);
        assert_eq!(vec(0u64..3, 6usize..=6).generate(&mut rng).len(), 6);
    }

    #[test]
    fn half_open_range_excludes_upper() {
        let mut rng = TestRng::for_test("collection-halfopen");
        let s = vec(0usize..2, 1..4);
        for _ in 0..200 {
            assert!((1..=3).contains(&s.generate(&mut rng).len()));
        }
    }
}

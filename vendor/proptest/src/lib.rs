//! Offline stand-in for `proptest`.
//!
//! Deterministic random testing with the subset of the proptest API this
//! workspace uses: the [`Strategy`] trait (`prop_map`, `prop_flat_map`),
//! range and tuple strategies, [`collection::vec`], the [`proptest!`]
//! macro (with optional `#![proptest_config(..)]`), and the
//! `prop_assert*` macros. No shrinking: a failing case panics with the
//! generated inputs left in the assertion message, and every test's
//! stream is seeded from its own name, so failures reproduce exactly.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The usual imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )*
                    // Upstream proptest bodies may `return Ok(())` to skip
                    // a case, so run the body in a Result closure.
                    let __outcome: ::core::result::Result<(), &'static str> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(__e) = __outcome {
                        panic!("property rejected: {}", __e);
                    }
                }
            }
        )*
    };
}

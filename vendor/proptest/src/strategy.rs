//! The [`Strategy`] trait and the primitive strategies.

use std::ops::{Range, RangeInclusive};

use rand::{RngExt, SampleUniform};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + PartialOrd + Copy,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

/// Inclusive integer ranges; implemented for the integer types used in
/// strategies (a separate impl keeps `hi = MAX` safe to express even
/// though no current test needs it).
macro_rules! impl_inclusive {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                if hi < <$t>::MAX {
                    rng.random_range(lo..hi + 1)
                } else if lo > <$t>::MIN {
                    rng.random_range(lo - 1..hi) + 1
                } else {
                    // Full domain.
                    rng.random_range(<$t>::MIN..<$t>::MAX)
                }
            }
        }
    )*};
}

impl_inclusive!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);
impl_tuple!(A, B, C, D, E);
impl_tuple!(A, B, C, D, E, G);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (2u64..=5).generate(&mut r);
            assert!((2..=5).contains(&w));
            let f = (-1.5..2.5f64).generate(&mut r);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn inclusive_singleton_works() {
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!((7usize..=7).generate(&mut r), 7);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..5).prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k)));
        for _ in 0..200 {
            let (n, k) = s.generate(&mut r);
            assert!(k < n && n < 5);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0usize..4, 10u64..12, -1.0..1.0f64).generate(&mut r);
        assert!(a < 4);
        assert!((10..12).contains(&b));
        assert!((-1.0..1.0).contains(&c));
    }

    #[test]
    fn just_clones() {
        let mut r = rng();
        assert_eq!(Just(vec![1, 2]).generate(&mut r), vec![1, 2]);
    }
}

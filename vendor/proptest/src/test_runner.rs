//! Test configuration and the deterministic test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than upstream's 256: several properties here run whole
        // solves per case, and determinism (not shrinking budget) is what
        // we rely on.
        ProptestConfig { cases: 32 }
    }
}

/// The generator driving a property test; deterministic per test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds the stream from the test's name (stable across runs and
    /// platforms, so failures reproduce).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_name_streams_are_stable() {
        let mut a = TestRng::for_test("foo");
        let mut b = TestRng::for_test("foo");
        let mut c = TestRng::for_test("bar");
        let xa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let xc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The container has no registry access, so the workspace vendors the
//! tiny slice of the `rand` API the code base actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++ seeded via
//! SplitMix64), the [`SeedableRng`] constructor trait, and [`RngExt`]
//! providing `random::<T>()` and `random_range(..)`. The streams are
//! stable across platforms and releases — experiment reproducibility
//! depends on that, so the generator is pinned here rather than to a
//! third-party crate's versioning policy.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Constructor trait for seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step; used for seeding and for derived streams.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The default deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A type that can be sampled uniformly from a generator.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// An integer type `random_range` can sample over a `Range`.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Lemire's unbiased widening-multiply rejection sampler.
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128).wrapping_mul(span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span; // (2^64 - span) mod span
        while lo < threshold {
            m = (rng.next_u64() as u128).wrapping_mul(span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, i64, i32);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ergonomic sampling methods, implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a value of `T` from its standard distribution
    /// (`f64`/`f32`: uniform `[0, 1)`; integers: full range).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open `lo..hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T: SampleUniform + PartialOrd>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "random_range: empty range");
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = r.random_range(10usize..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(6);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(7);
        let _ = r.random_range(5usize..5);
    }

    #[test]
    fn uniform_u64_unbiased_smoke() {
        // span 3 over many draws: each residue within 2% of 1/3.
        let mut r = StdRng::seed_from_u64(8);
        let mut counts = [0usize; 3];
        let n = 90_000;
        for _ in 0..n {
            counts[r.random_range(0usize..3)] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "frac {frac}");
        }
    }
}

//! Owned JSON value model, strict parser, and compact writer.

use crate::Error;

/// A JSON value. Objects preserve insertion order (deterministic output).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key–value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            // JSON has no NaN/Inf literal; serialize those as null.
            Value::Num(n) if !n.is_finite() => write!(f, "null"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                write!(f, "{buf}")
            }
            Value::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the specs
                            // this workspace writes; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Value::Num(-250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a": [1, 2, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Null));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn display_roundtrips() {
        let src = r#"{"name":"α β","xs":[1,2.5,null],"ok":true}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("'single'").is_err());
    }

    #[test]
    fn non_finite_serializes_null() {
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string(), "null");
    }
}

//! Offline stand-in for `serde` (+ a built-in JSON backend).
//!
//! The registry is unreachable from this container, so the workspace
//! vendors the slice of serde it needs: [`Serialize`] / [`Deserialize`]
//! traits routed through an owned JSON [`json::Value`] model, `derive`
//! macros for structs with named fields (see `serde_derive`), and a
//! strict JSON parser/writer. Field order is preserved, so serialized
//! output is byte-deterministic — the campaign engine's JSONL sink
//! depends on that for reproducible artifacts.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use json::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// A "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        Error::new(format!("missing field `{name}`"))
    }

    /// A type-mismatch error.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error::new(format!("expected {expected}, got {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`json::Value`].
pub trait Serialize {
    /// Converts to the value model.
    fn to_value(&self) -> Value;

    /// Serializes to a compact JSON string.
    fn to_json(&self) -> String {
        self.to_value().to_string()
    }
}

/// Types that can reconstruct themselves from a [`json::Value`].
pub trait Deserialize: Sized {
    /// Converts from the value model.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Parses from a JSON string.
    fn from_json(s: &str) -> Result<Self, Error> {
        Self::from_value(&json::parse(s)?)
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(Error::type_mismatch("number", other)),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(Error::type_mismatch("integer", other)),
                }
            }
        }
    )*};
}

impl_float!(f64, f32);
impl_int!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(f64::from_value(&3.5f64.to_value()).unwrap(), 3.5);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f64, -2.5, 0.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn integer_rejects_fraction() {
        assert!(usize::from_value(&Value::Num(1.5)).is_err());
    }
}

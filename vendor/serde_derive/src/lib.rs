//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! structs with named fields (the only shapes this workspace derives),
//! without `syn`/`quote`: the input token stream is walked directly to
//! extract the struct name and field list, and the impl is emitted as a
//! string. Unsupported shapes (enums, tuple structs, generics) produce a
//! compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.next() {
            None => return Err("no `struct` item found".into()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracket group that follows.
                iter.next();
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                match word.as_str() {
                    "pub" => {
                        // Possible `pub(crate)` — skip the group if present.
                        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                        {
                            iter.next();
                        }
                    }
                    "struct" => {
                        let name = match iter.next() {
                            Some(TokenTree::Ident(n)) => n.to_string(),
                            _ => return Err("expected struct name".into()),
                        };
                        match iter.next() {
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                                return Ok(StructShape {
                                    name,
                                    fields: parse_named_fields(g.stream())?,
                                });
                            }
                            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                                return Err(format!(
                                    "serde shim: generic struct `{name}` is not supported"
                                ));
                            }
                            _ => {
                                return Err(format!(
                                    "serde shim: struct `{name}` must have named fields"
                                ));
                            }
                        }
                    }
                    "enum" | "union" => {
                        return Err(format!("serde shim: `{word}` derives are not supported"));
                    }
                    _ => {}
                }
            }
            Some(_) => {}
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    'fields: loop {
        // Skip attributes (doc comments included) and visibility.
        let field_name = loop {
            match iter.next() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) => {
                    let word = id.to_string();
                    if word == "pub" {
                        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                        {
                            iter.next();
                        }
                        continue;
                    }
                    break word;
                }
                Some(other) => {
                    return Err(format!("serde shim: unexpected token `{other}` in fields"));
                }
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(format!(
                    "serde shim: expected `:` after field `{field_name}`"
                ))
            }
        }
        // Consume the type: everything until a comma at angle-depth 0.
        let mut depth = 0i32;
        loop {
            match iter.peek() {
                None => {
                    fields.push(field_name);
                    break 'fields;
                }
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == ',' && depth == 0 {
                        iter.next();
                        break;
                    }
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    }
                    iter.next();
                }
                Some(_) => {
                    iter.next();
                }
            }
        }
        fields.push(field_name);
    }
    Ok(fields)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives `serde::Serialize` for a struct with named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut entries = String::new();
    for f in &shape.fields {
        entries.push_str(&format!(
            "(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"
        ));
    }
    format!(
        "impl serde::Serialize for {} {{\n\
             fn to_value(&self) -> serde::json::Value {{\n\
                 serde::json::Value::Obj(vec![{entries}])\n\
             }}\n\
         }}",
        shape.name
    )
    .parse()
    .unwrap()
}

/// Derives `serde::Deserialize` for a struct with named fields.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut inits = String::new();
    for f in &shape.fields {
        inits.push_str(&format!(
            "{f}: serde::Deserialize::from_value(\
                 v.get(\"{f}\").ok_or_else(|| serde::Error::missing_field(\"{f}\"))?\
             )?,"
        ));
    }
    format!(
        "impl serde::Deserialize for {} {{\n\
             fn from_value(v: &serde::json::Value) -> Result<Self, serde::Error> {{\n\
                 Ok(Self {{ {inits} }})\n\
             }}\n\
         }}",
        shape.name
    )
    .parse()
    .unwrap()
}
